//! Vertical partitioning (§3.2): splitting columns across partitions.
//!
//! "Separating the cached fields from the uncached fields can complement
//! index caching … splitting the table based on the field update rate
//! can increase the write density per page. Weighing the benefit of
//! vertical partitioning against cost of merging the partitions together
//! makes this problem non-trivial."
//!
//! The cost model here makes that trade-off explicit: a query touching
//! columns `C` reads, for every partition it intersects, the partition's
//! full row width, plus a per-extra-partition merge penalty. The greedy
//! optimizer starts from one-column-per-partition and merges groups
//! while the modeled workload cost decreases.

use nbb_storage::error::Result;
use nbb_storage::heap::HeapFile;
use nbb_storage::rid::RecordId;

/// A query class: the set of columns it touches and its frequency.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryClass {
    /// Column indexes accessed.
    pub columns: Vec<usize>,
    /// Relative frequency (any non-negative scale).
    pub weight: f64,
}

/// A partitioning: disjoint column groups covering all columns.
pub type Partitioning = Vec<Vec<usize>>;

/// Modeled cost of running `workload` against `partitioning`:
/// `Σ weight · (bytes of touched partitions + merge_penalty · extra
/// partitions)`.
pub fn evaluate(
    partitioning: &Partitioning,
    col_widths: &[usize],
    workload: &[QueryClass],
    merge_penalty: f64,
) -> f64 {
    let mut cost = 0.0;
    for q in workload {
        let mut touched = 0usize;
        let mut bytes = 0usize;
        for group in partitioning {
            if group.iter().any(|c| q.columns.contains(c)) {
                touched += 1;
                bytes += group.iter().map(|&c| col_widths[c]).sum::<usize>();
            }
        }
        cost += q.weight * (bytes as f64 + merge_penalty * touched.saturating_sub(1) as f64);
    }
    cost
}

/// Greedy partitioner: begin fully decomposed, merge the pair of groups
/// whose union lowers workload cost the most, repeat until no merge
/// helps.
pub fn optimize(col_widths: &[usize], workload: &[QueryClass], merge_penalty: f64) -> Partitioning {
    let ncols = col_widths.len();
    for q in workload {
        for &c in &q.columns {
            assert!(c < ncols, "query references column {c} beyond schema width {ncols}");
        }
    }
    let mut parts: Partitioning = (0..ncols).map(|c| vec![c]).collect();
    let mut cost = evaluate(&parts, col_widths, workload, merge_penalty);
    loop {
        let mut best: Option<(usize, usize, f64)> = None;
        for i in 0..parts.len() {
            for j in i + 1..parts.len() {
                let mut trial = parts.clone();
                let merged: Vec<usize> = trial[i].iter().chain(trial[j].iter()).copied().collect();
                trial[i] = merged;
                trial.remove(j);
                let c = evaluate(&trial, col_widths, workload, merge_penalty);
                if c < cost - 1e-9 && best.is_none_or(|(_, _, bc)| c < bc) {
                    best = Some((i, j, c));
                }
            }
        }
        match best {
            Some((i, j, c)) => {
                let moved = parts.remove(j);
                parts[i].extend(moved);
                parts[i].sort_unstable();
                cost = c;
            }
            None => break,
        }
    }
    parts.sort_by_key(|g| g.first().copied().unwrap_or(0));
    parts
}

/// A table stored column-group-wise over one heap per partition.
///
/// Rows are fixed-width; inserting splits the row into per-partition
/// projections, reading merges them back. A row directory keeps the
/// per-partition RIDs aligned.
pub struct VerticalTable {
    partitioning: Partitioning,
    col_offsets: Vec<usize>,
    col_widths: Vec<usize>,
    heaps: Vec<HeapFile>,
    rows: parking_lot_free_directory::RowDirectory,
}

/// Tiny internal module to keep the row directory simple and lock-free
/// for single-writer usage (the simulation inserts from one thread).
mod parking_lot_free_directory {
    use nbb_storage::rid::RecordId;
    use parking_lot::Mutex;

    #[derive(Default)]
    pub struct RowDirectory {
        inner: Mutex<Vec<Vec<RecordId>>>,
    }

    impl RowDirectory {
        pub fn push(&self, rids: Vec<RecordId>) -> usize {
            let mut g = self.inner.lock();
            g.push(rids);
            g.len() - 1
        }

        pub fn get(&self, row: usize) -> Option<Vec<RecordId>> {
            self.inner.lock().get(row).cloned()
        }

        pub fn len(&self) -> usize {
            self.inner.lock().len()
        }
    }
}

impl VerticalTable {
    /// Creates a vertical table: one heap per column group.
    ///
    /// `col_widths` are the fixed byte widths of each column in row
    /// order; `heaps` must have one entry per group of `partitioning`.
    pub fn new(partitioning: Partitioning, col_widths: Vec<usize>, heaps: Vec<HeapFile>) -> Self {
        assert_eq!(partitioning.len(), heaps.len(), "one heap per partition");
        let mut seen = vec![false; col_widths.len()];
        for g in &partitioning {
            for &c in g {
                assert!(!seen[c], "column {c} in two partitions");
                seen[c] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "partitioning must cover all columns");
        let mut col_offsets = Vec::with_capacity(col_widths.len());
        let mut off = 0;
        for w in &col_widths {
            col_offsets.push(off);
            off += w;
        }
        VerticalTable { partitioning, col_offsets, col_widths, heaps, rows: Default::default() }
    }

    /// Full row width in bytes.
    pub fn row_width(&self) -> usize {
        self.col_widths.iter().sum()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.len() == 0
    }

    /// The column groups.
    pub fn partitioning(&self) -> &Partitioning {
        &self.partitioning
    }

    fn project(&self, row: &[u8], group: &[usize]) -> Vec<u8> {
        let mut out = Vec::with_capacity(group.iter().map(|&c| self.col_widths[c]).sum());
        for &c in group {
            out.extend_from_slice(
                &row[self.col_offsets[c]..self.col_offsets[c] + self.col_widths[c]],
            );
        }
        out
    }

    /// Inserts a full row, returning its row id.
    pub fn insert(&self, row: &[u8]) -> Result<usize> {
        assert_eq!(row.len(), self.row_width(), "row width mismatch");
        let mut rids: Vec<RecordId> = Vec::with_capacity(self.heaps.len());
        for (group, heap) in self.partitioning.iter().zip(&self.heaps) {
            rids.push(heap.insert(&self.project(row, group))?);
        }
        Ok(self.rows.push(rids))
    }

    /// Reads selected columns of a row, touching only the partitions
    /// that contain them. Returns the values in the order requested and
    /// the number of partitions touched (the merge cost driver).
    pub fn read_columns(&self, row: usize, columns: &[usize]) -> Result<(Vec<Vec<u8>>, usize)> {
        let rids = self
            .rows
            .get(row)
            .ok_or_else(|| nbb_storage::error::StorageError::Corrupt(format!("row {row}")))?;
        let mut touched = 0usize;
        let mut fetched: Vec<Option<Vec<u8>>> = vec![None; self.col_widths.len()];
        for (gi, group) in self.partitioning.iter().enumerate() {
            if !group.iter().any(|c| columns.contains(c)) {
                continue;
            }
            touched += 1;
            let bytes = self.heaps[gi].get(rids[gi])?;
            let mut off = 0;
            for &c in group {
                fetched[c] = Some(bytes[off..off + self.col_widths[c]].to_vec());
                off += self.col_widths[c];
            }
        }
        let out = columns
            .iter()
            .map(|&c| fetched[c].clone().expect("column fetched with its group"))
            .collect();
        Ok((out, touched))
    }

    /// Reconstructs a full row (touching every partition — the merge
    /// cost the paper warns about).
    pub fn read_row(&self, row: usize) -> Result<Vec<u8>> {
        let all: Vec<usize> = (0..self.col_widths.len()).collect();
        let (cols, _) = self.read_columns(row, &all)?;
        let mut out = Vec::with_capacity(self.row_width());
        for c in cols {
            out.extend_from_slice(&c);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbb_storage::buffer::BufferPool;
    use nbb_storage::disk::{DiskManager, InMemoryDisk};
    use std::sync::Arc;

    fn heap() -> HeapFile {
        let disk: Arc<dyn DiskManager> = Arc::new(InMemoryDisk::new(1024));
        HeapFile::create(Arc::new(BufferPool::new(disk, 32))).unwrap()
    }

    #[test]
    fn evaluate_prefers_collocating_coaccessed_columns() {
        let widths = [8usize, 8, 100];
        // One query always reads columns 0 and 1 together; col 2 unread.
        let wl = [QueryClass { columns: vec![0, 1], weight: 1.0 }];
        let split: Partitioning = vec![vec![0], vec![1], vec![2]];
        let merged: Partitioning = vec![vec![0, 1], vec![2]];
        let c_split = evaluate(&split, &widths, &wl, 50.0);
        let c_merged = evaluate(&merged, &widths, &wl, 50.0);
        assert!(c_merged < c_split, "{c_merged} vs {c_split}");
    }

    #[test]
    fn evaluate_prefers_splitting_off_cold_wide_columns() {
        let widths = [8usize, 200];
        let wl = [QueryClass { columns: vec![0], weight: 1.0 }];
        let together: Partitioning = vec![vec![0, 1]];
        let apart: Partitioning = vec![vec![0], vec![1]];
        assert!(evaluate(&apart, &widths, &wl, 10.0) < evaluate(&together, &widths, &wl, 10.0));
    }

    #[test]
    fn optimize_separates_hot_narrow_from_cold_wide() {
        // The §3.2 index-caching complement: cached fields (0,1) are hot,
        // the blob (2) is cold.
        let widths = [8usize, 9, 500];
        let wl = [
            QueryClass { columns: vec![0, 1], weight: 100.0 },
            QueryClass { columns: vec![0, 1, 2], weight: 1.0 },
        ];
        let parts = optimize(&widths, &wl, 20.0);
        assert_eq!(parts, vec![vec![0, 1], vec![2]]);
    }

    #[test]
    fn optimize_keeps_everything_together_when_queries_want_full_rows() {
        let widths = [8usize, 8, 8];
        let wl = [QueryClass { columns: vec![0, 1, 2], weight: 1.0 }];
        let parts = optimize(&widths, &wl, 100.0);
        assert_eq!(parts, vec![vec![0, 1, 2]]);
    }

    #[test]
    fn optimize_with_empty_workload_stays_decomposed() {
        let widths = [4usize, 4];
        let parts = optimize(&widths, &[], 10.0);
        assert_eq!(parts.len(), 2, "no evidence to merge: {parts:?}");
    }

    #[test]
    fn vertical_table_round_trip() {
        let parts: Partitioning = vec![vec![0, 2], vec![1]];
        let widths = vec![4usize, 8, 4];
        let t = VerticalTable::new(parts, widths, vec![heap(), heap()]);
        let row: Vec<u8> = (0u8..16).collect();
        let id = t.insert(&row).unwrap();
        assert_eq!(t.read_row(id).unwrap(), row);
    }

    #[test]
    fn read_columns_touches_minimal_partitions() {
        let parts: Partitioning = vec![vec![0], vec![1], vec![2]];
        let widths = vec![2usize, 2, 2];
        let t = VerticalTable::new(parts, widths, vec![heap(), heap(), heap()]);
        let id = t.insert(&[1, 1, 2, 2, 3, 3]).unwrap();
        let (vals, touched) = t.read_columns(id, &[1]).unwrap();
        assert_eq!(vals, vec![vec![2, 2]]);
        assert_eq!(touched, 1);
        let (vals, touched) = t.read_columns(id, &[0, 2]).unwrap();
        assert_eq!(vals, vec![vec![1, 1], vec![3, 3]]);
        assert_eq!(touched, 2);
    }

    #[test]
    fn many_rows_stay_aligned_across_partitions() {
        let parts: Partitioning = vec![vec![0], vec![1]];
        let t = VerticalTable::new(parts, vec![8, 24], vec![heap(), heap()]);
        let mut ids = Vec::new();
        for i in 0..300u64 {
            let mut row = i.to_le_bytes().to_vec();
            row.extend_from_slice(&[i as u8; 24]);
            ids.push(t.insert(&row).unwrap());
        }
        for (i, id) in ids.iter().enumerate() {
            let (vals, _) = t.read_columns(*id, &[0]).unwrap();
            assert_eq!(u64::from_le_bytes(vals[0][..8].try_into().unwrap()), i as u64);
        }
        assert_eq!(t.len(), 300);
    }

    #[test]
    #[should_panic(expected = "cover all columns")]
    fn partitioning_must_cover_schema() {
        let _ = VerticalTable::new(vec![vec![0]], vec![4, 4], vec![heap()]);
    }
}
