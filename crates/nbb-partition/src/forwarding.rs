//! Forwarding tables: redirecting stale physical pointers after
//! relocation.
//!
//! §3.1: moving a tuple "does require updating foreign key pointers
//! and/or using forwarding tables to redirect queries using old ids to
//! the new tuples". A [`ForwardingTable`] maps old packed RIDs to new
//! ones, chases chains (a tuple moved twice), and supports path
//! compression.

use nbb_storage::rid::RecordId;
use std::collections::HashMap;

/// Old-address → new-address redirection map.
#[derive(Debug, Default, Clone)]
pub struct ForwardingTable {
    map: HashMap<u64, u64>,
}

impl ForwardingTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that the tuple at `from` now lives at `to`.
    pub fn forward(&mut self, from: RecordId, to: RecordId) {
        assert_ne!(from, to, "self-forwarding loop");
        self.map.insert(from.to_u64(), to.to_u64());
    }

    /// Resolves an address, chasing forwarding chains to the terminal
    /// location. Addresses never forwarded resolve to themselves.
    pub fn resolve(&self, rid: RecordId) -> RecordId {
        let mut cur = rid.to_u64();
        let mut hops = 0;
        while let Some(&next) = self.map.get(&cur) {
            cur = next;
            hops += 1;
            assert!(hops <= self.map.len(), "forwarding cycle detected");
        }
        RecordId::from_u64(cur)
    }

    /// Number of hops needed to resolve `rid` (0 = direct).
    pub fn chain_length(&self, rid: RecordId) -> usize {
        let mut cur = rid.to_u64();
        let mut hops = 0;
        while let Some(&next) = self.map.get(&cur) {
            cur = next;
            hops += 1;
        }
        hops
    }

    /// Path-compresses every chain to a single hop.
    pub fn compress(&mut self) {
        let keys: Vec<u64> = self.map.keys().copied().collect();
        for k in keys {
            let terminal = self.resolve(RecordId::from_u64(k)).to_u64();
            self.map.insert(k, terminal);
        }
    }

    /// Number of forwarding entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no redirections exist.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Drops entries whose source address has been reused or reconciled
    /// (caller decides which old addresses are dead).
    pub fn retire(&mut self, from: RecordId) {
        self.map.remove(&from.to_u64());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbb_storage::page::PageId;

    fn rid(p: u64, s: u16) -> RecordId {
        RecordId::new(PageId(p), s)
    }

    #[test]
    fn unforwarded_resolves_to_self() {
        let t = ForwardingTable::new();
        assert_eq!(t.resolve(rid(1, 2)), rid(1, 2));
        assert_eq!(t.chain_length(rid(1, 2)), 0);
    }

    #[test]
    fn single_hop() {
        let mut t = ForwardingTable::new();
        t.forward(rid(1, 0), rid(9, 4));
        assert_eq!(t.resolve(rid(1, 0)), rid(9, 4));
        assert_eq!(t.chain_length(rid(1, 0)), 1);
    }

    #[test]
    fn chains_chase_to_terminal() {
        let mut t = ForwardingTable::new();
        t.forward(rid(1, 0), rid(2, 0));
        t.forward(rid(2, 0), rid(3, 0));
        t.forward(rid(3, 0), rid(4, 0));
        assert_eq!(t.resolve(rid(1, 0)), rid(4, 0));
        assert_eq!(t.chain_length(rid(1, 0)), 3);
    }

    #[test]
    fn compress_flattens_chains() {
        let mut t = ForwardingTable::new();
        t.forward(rid(1, 0), rid(2, 0));
        t.forward(rid(2, 0), rid(3, 0));
        t.compress();
        assert_eq!(t.chain_length(rid(1, 0)), 1);
        assert_eq!(t.resolve(rid(1, 0)), rid(3, 0));
        assert_eq!(t.resolve(rid(2, 0)), rid(3, 0));
    }

    #[test]
    fn retire_removes_entry() {
        let mut t = ForwardingTable::new();
        t.forward(rid(1, 0), rid(2, 0));
        t.retire(rid(1, 0));
        assert!(t.is_empty());
        assert_eq!(t.resolve(rid(1, 0)), rid(1, 0));
    }

    #[test]
    #[should_panic(expected = "self-forwarding")]
    fn self_loop_rejected() {
        let mut t = ForwardingTable::new();
        t.forward(rid(1, 0), rid(1, 0));
    }
}
