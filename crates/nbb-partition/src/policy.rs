//! Hot-set policies: deciding which tuples are hot (§3.1).
//!
//! "The properties of the workload dictate how to identify hot tuples
//! and move tuples between the hot and cold partitions." Three policies
//! cover the paper's cases:
//!
//! * [`SetPolicy`] — an application-defined hot set (Wikipedia: "hot
//!   revision tuples are those that are pointed to from the page table");
//! * [`TopKPolicy`] — the `k` most accessed keys per a
//!   [`crate::tracker::Tracker`] snapshot;
//! * [`ThresholdPolicy`] — any key with at least `min_count` accesses.

use crate::tracker::Tracker;
use std::collections::HashSet;

/// Decides whether a (logical) key is hot.
pub trait HotPolicy {
    /// True if the key belongs in the hot partition.
    fn is_hot(&self, key: u64) -> bool;
}

/// Explicit application-defined hot set.
#[derive(Debug, Clone, Default)]
pub struct SetPolicy {
    hot: HashSet<u64>,
}

impl SetPolicy {
    /// Builds from any key iterator.
    pub fn new(keys: impl IntoIterator<Item = u64>) -> Self {
        SetPolicy { hot: keys.into_iter().collect() }
    }

    /// Marks a key hot (e.g. a page's new latest revision).
    pub fn promote(&mut self, key: u64) {
        self.hot.insert(key);
    }

    /// Unmarks a key (the superseded revision).
    pub fn demote(&mut self, key: u64) {
        self.hot.remove(&key);
    }

    /// Replaces `old` with `new` in one step — the Wikipedia policy on a
    /// new revision insert.
    pub fn replace(&mut self, old: u64, new: u64) {
        self.demote(old);
        self.promote(new);
    }

    /// Size of the hot set.
    pub fn len(&self) -> usize {
        self.hot.len()
    }

    /// True when no key is hot.
    pub fn is_empty(&self) -> bool {
        self.hot.is_empty()
    }
}

impl HotPolicy for SetPolicy {
    fn is_hot(&self, key: u64) -> bool {
        self.hot.contains(&key)
    }
}

/// Hot = among the top `k` keys of a tracker snapshot.
pub struct TopKPolicy {
    hot: HashSet<u64>,
}

impl TopKPolicy {
    /// Snapshots the tracker's current top `k`.
    pub fn from_tracker(tracker: &dyn Tracker, k: usize) -> Self {
        TopKPolicy { hot: tracker.top(k).into_iter().map(|(key, _)| key).collect() }
    }
}

impl HotPolicy for TopKPolicy {
    fn is_hot(&self, key: u64) -> bool {
        self.hot.contains(&key)
    }
}

/// Hot = estimated count ≥ `min_count`.
pub struct ThresholdPolicy<'a> {
    tracker: &'a dyn Tracker,
    min_count: u64,
}

impl<'a> ThresholdPolicy<'a> {
    /// Builds over a live tracker.
    pub fn new(tracker: &'a dyn Tracker, min_count: u64) -> Self {
        ThresholdPolicy { tracker, min_count }
    }
}

impl HotPolicy for ThresholdPolicy<'_> {
    fn is_hot(&self, key: u64) -> bool {
        self.tracker.estimate(key) >= self.min_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracker::ExactTracker;

    #[test]
    fn set_policy_replace_models_new_revision() {
        let mut p = SetPolicy::new([10, 20, 30]);
        assert!(p.is_hot(10));
        p.replace(10, 11); // new revision supersedes 10
        assert!(!p.is_hot(10));
        assert!(p.is_hot(11));
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn topk_policy_tracks_hottest() {
        let mut t = ExactTracker::new();
        for _ in 0..10 {
            t.record(1);
        }
        for _ in 0..5 {
            t.record(2);
        }
        t.record(3);
        let p = TopKPolicy::from_tracker(&t, 2);
        assert!(p.is_hot(1));
        assert!(p.is_hot(2));
        assert!(!p.is_hot(3));
    }

    #[test]
    fn threshold_policy_uses_live_counts() {
        let mut t = ExactTracker::new();
        for _ in 0..4 {
            t.record(7);
        }
        {
            let p = ThresholdPolicy::new(&t, 5);
            assert!(!p.is_hot(7));
        }
        t.record(7);
        let p = ThresholdPolicy::new(&t, 5);
        assert!(p.is_hot(7));
        assert!(!p.is_hot(8));
    }
}
