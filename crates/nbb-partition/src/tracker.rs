//! Access-frequency tracking: identifying hot tuples.
//!
//! §3.1: "Other applications may have different policies, or require
//! automated tools to keep track of access patterns." Two trackers share
//! one interface: an exact counter (ground truth, O(distinct) memory)
//! and a Space-Saving top-k sketch (Metwally et al.) with bounded
//! memory, suitable for production-sized key spaces.

use std::collections::HashMap;

/// Common interface for access trackers.
pub trait Tracker {
    /// Records one access to `key`.
    fn record(&mut self, key: u64);
    /// Estimated access count for `key` (0 when unknown/untracked).
    fn estimate(&self, key: u64) -> u64;
    /// The `n` hottest keys with estimated counts, hottest first.
    fn top(&self, n: usize) -> Vec<(u64, u64)>;
    /// Total recorded accesses.
    fn total(&self) -> u64;
}

/// Exact per-key counting.
#[derive(Debug, Default, Clone)]
pub struct ExactTracker {
    counts: HashMap<u64, u64>,
    total: u64,
}

impl ExactTracker {
    /// Empty tracker.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Tracker for ExactTracker {
    fn record(&mut self, key: u64) {
        *self.counts.entry(key).or_insert(0) += 1;
        self.total += 1;
    }

    fn estimate(&self, key: u64) -> u64 {
        self.counts.get(&key).copied().unwrap_or(0)
    }

    fn top(&self, n: usize) -> Vec<(u64, u64)> {
        let mut v: Vec<(u64, u64)> = self.counts.iter().map(|(k, c)| (*k, *c)).collect();
        v.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(n);
        v
    }

    fn total(&self) -> u64 {
        self.total
    }
}

/// Space-Saving sketch: at most `capacity` counters; on overflow the
/// minimum counter is reassigned to the new key (inheriting its count,
/// which upper-bounds the true count).
#[derive(Debug, Clone)]
pub struct SpaceSavingTracker {
    capacity: usize,
    counts: HashMap<u64, u64>,
    total: u64,
}

impl SpaceSavingTracker {
    /// Tracker with at most `capacity` monitored keys.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1);
        SpaceSavingTracker { capacity, counts: HashMap::with_capacity(capacity), total: 0 }
    }

    /// Number of currently monitored keys.
    pub fn monitored(&self) -> usize {
        self.counts.len()
    }
}

impl Tracker for SpaceSavingTracker {
    fn record(&mut self, key: u64) {
        self.total += 1;
        if let Some(c) = self.counts.get_mut(&key) {
            *c += 1;
            return;
        }
        if self.counts.len() < self.capacity {
            self.counts.insert(key, 1);
            return;
        }
        // Evict the minimum; the newcomer inherits min+1.
        let (&min_key, &min_count) =
            self.counts.iter().min_by_key(|(k, c)| (**c, **k)).expect("nonempty");
        self.counts.remove(&min_key);
        self.counts.insert(key, min_count + 1);
    }

    fn estimate(&self, key: u64) -> u64 {
        self.counts.get(&key).copied().unwrap_or(0)
    }

    fn top(&self, n: usize) -> Vec<(u64, u64)> {
        let mut v: Vec<(u64, u64)> = self.counts.iter().map(|(k, c)| (*k, *c)).collect();
        v.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(n);
        v
    }

    fn total(&self) -> u64 {
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn exact_counts_exactly() {
        let mut t = ExactTracker::new();
        for _ in 0..5 {
            t.record(1);
        }
        for _ in 0..3 {
            t.record(2);
        }
        t.record(3);
        assert_eq!(t.estimate(1), 5);
        assert_eq!(t.estimate(2), 3);
        assert_eq!(t.estimate(99), 0);
        assert_eq!(t.total(), 9);
        assert_eq!(t.top(2), vec![(1, 5), (2, 3)]);
    }

    #[test]
    fn space_saving_within_capacity_is_exact() {
        let mut t = SpaceSavingTracker::new(10);
        for k in 0..5u64 {
            for _ in 0..=k {
                t.record(k);
            }
        }
        for k in 0..5u64 {
            assert_eq!(t.estimate(k), k + 1);
        }
        assert_eq!(t.monitored(), 5);
    }

    #[test]
    fn space_saving_finds_heavy_hitters_under_pressure() {
        // 4 heavy keys among 1000 light ones, capacity 32.
        let mut t = SpaceSavingTracker::new(32);
        let mut rng = SmallRng::seed_from_u64(5);
        let heavy = [10u64, 20, 30, 40];
        for _ in 0..50_000 {
            if rng.gen_bool(0.6) {
                t.record(heavy[rng.gen_range(0..4)]);
            } else {
                t.record(rng.gen_range(1000..2000));
            }
        }
        let top: Vec<u64> = t.top(4).into_iter().map(|(k, _)| k).collect();
        for h in heavy {
            assert!(top.contains(&h), "heavy hitter {h} missing from {top:?}");
        }
    }

    #[test]
    fn space_saving_overestimates_only() {
        let mut exact = ExactTracker::new();
        let mut sketch = SpaceSavingTracker::new(16);
        let mut rng = SmallRng::seed_from_u64(6);
        for _ in 0..10_000 {
            let k = rng.gen_range(0..200u64);
            exact.record(k);
            sketch.record(k);
        }
        for (k, est) in sketch.top(16) {
            assert!(est >= exact.estimate(k), "space-saving must overestimate ({k})");
        }
        assert_eq!(sketch.total(), exact.total());
    }

    #[test]
    fn top_is_deterministic_on_ties() {
        let mut t = ExactTracker::new();
        t.record(5);
        t.record(3);
        t.record(9);
        // counts all equal: ties break by key
        assert_eq!(t.top(3), vec![(3, 1), (5, 1), (9, 1)]);
    }
}
