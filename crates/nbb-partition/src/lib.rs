//! # nbb-partition — locality-waste elimination (*No Bits Left Behind* §3)
//!
//! "Locality waste" is I/O and memory spent on bytes co-located with the
//! data a query actually wants. This crate implements the paper's §3
//! machinery:
//!
//! * [`tracker`] — access-frequency tracking (exact and Space-Saving);
//! * [`policy`] — hot-set policies (application sets, top-k, thresholds);
//! * [`horizontal`] — §3.1: clustering hot tuples by delete-then-append
//!   and the two-heap hot/cold [`horizontal::HotColdStore`] behind
//!   Figure 3's `Partition` bar;
//! * [`forwarding`] — forwarding tables for relocated tuples;
//! * [`vertical`] — §3.2: a column-group cost model, greedy partitioning
//!   optimizer, and a working [`vertical::VerticalTable`] store.

#![warn(missing_docs)]

pub mod forwarding;
pub mod horizontal;
pub mod policy;
pub mod tracker;
pub mod vertical;

pub use forwarding::ForwardingTable;
pub use horizontal::{cluster_hot_tuples, HotColdStore, Loc, Temperature};
pub use policy::{HotPolicy, SetPolicy, ThresholdPolicy, TopKPolicy};
pub use tracker::{ExactTracker, SpaceSavingTracker, Tracker};
pub use vertical::{evaluate, optimize, Partitioning, QueryClass, VerticalTable};
