//! Buffer-pool edge cases: exhaustion, nested access, stats accounting.

use nbb_storage::{BufferPool, DiskManager, InMemoryDisk, StorageError};
use std::sync::Arc;

fn pool(cap: usize) -> Arc<BufferPool> {
    let disk: Arc<dyn DiskManager> = Arc::new(InMemoryDisk::new(256));
    Arc::new(BufferPool::new(disk, cap))
}

#[test]
fn exhaustion_when_all_frames_pinned() {
    // Single-frame pool: fetching a second page while the first is
    // pinned (inside its closure) must fail with BufferPoolExhausted,
    // not deadlock and not evict the pinned frame.
    let p = pool(1);
    let a = p.new_page().unwrap();
    let b = p.new_page().unwrap();
    let inner_result = p
        .with_page(a, |_| {
            // `a` is pinned here; no frame is free for `b`.
            p.with_page(b, |_| ()).map_err(|e| format!("{e}"))
        })
        .unwrap();
    assert!(inner_result.unwrap_err().contains("exhausted"), "expected BufferPoolExhausted");
    // After the closure, the frame is unpinned and `b` is reachable.
    p.with_page(b, |_| ()).unwrap();
}

#[test]
fn nested_access_to_distinct_pages_is_fine() {
    let p = pool(4);
    let a = p.new_page().unwrap();
    let b = p.new_page().unwrap();
    let sum = p
        .with_page_mut(a, |pa| {
            pa.bytes_mut()[0] = 5;
            p.with_page_mut(b, |pb| {
                pb.bytes_mut()[0] = 7;
                pb.bytes()[0]
            })
            .unwrap()
                + pa.bytes()[0]
        })
        .unwrap();
    assert_eq!(sum, 12);
}

#[test]
fn eviction_prefers_unreferenced_frames() {
    // Touch page A repeatedly (ref bit set), then stream other pages:
    // A should stay resident longer than the streamed ones.
    let p = pool(4);
    let a = p.new_page().unwrap();
    let others: Vec<_> = (0..8).map(|_| p.new_page().unwrap()).collect();
    p.with_page(a, |_| ()).unwrap();
    for o in &others {
        p.with_page(a, |_| ()).unwrap(); // keep A's ref bit hot
        p.with_page(*o, |_| ()).unwrap();
    }
    assert!(p.contains(a), "frequently-referenced page evicted by clock");
}

#[test]
fn evict_pinned_page_refused() {
    let p = pool(2);
    let a = p.new_page().unwrap();
    let err = p.with_page(a, |_| p.evict_page(a)).unwrap();
    assert!(matches!(err, Err(StorageError::BufferPoolExhausted)));
}

#[test]
fn stats_add_up() {
    let p = pool(2);
    let ids: Vec<_> = (0..6).map(|_| p.new_page().unwrap()).collect();
    for id in &ids {
        p.with_page(*id, |_| ()).unwrap(); // 6 misses
    }
    for id in ids.iter().rev().take(2) {
        p.with_page(*id, |_| ()).unwrap(); // 2 hits (last two resident)
    }
    let s = p.stats();
    assert_eq!(s.misses, 6);
    assert_eq!(s.hits, 2);
    assert_eq!(s.evictions, 4, "6 loads into 2 frames");
}
