//! Model-checking property tests for slotted pages and heap files.

use nbb_storage::{BufferPool, DiskManager, HeapFile, InMemoryDisk, Page, SlottedPage};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Slotted page vs an in-memory model under arbitrary op sequences.
    #[test]
    fn slotted_page_matches_model(
        ops in prop::collection::vec((0u8..4, any::<u8>(), 1usize..120), 1..200)
    ) {
        let mut page = Page::new(2048);
        let mut model: HashMap<u16, Vec<u8>> = HashMap::new();
        {
            let mut sp = SlottedPage::init(&mut page);
            let mut slots: Vec<u16> = Vec::new();
            for (op, byte, len) in ops {
                match op {
                    0 => {
                        let tuple = vec![byte; len];
                        if let Ok(slot) = sp.insert(&tuple) {
                            model.insert(slot, tuple);
                            if !slots.contains(&slot) {
                                slots.push(slot);
                            }
                        }
                    }
                    1 => {
                        if let Some(&slot) = slots.get(len % slots.len().max(1)) {
                            let had = model.remove(&slot).is_some();
                            prop_assert_eq!(sp.delete(slot).is_ok(), had);
                        }
                    }
                    2 => {
                        if let Some(&slot) = slots.get(len % slots.len().max(1)) {
                            if let std::collections::hash_map::Entry::Occupied(mut e) = model.entry(slot) {
                                let tuple = vec![byte.wrapping_add(1); len];
                                if sp.update(slot, &tuple).is_ok() {
                                    e.insert(tuple);
                                }
                            }
                        }
                    }
                    _ => {
                        sp.compact();
                    }
                }
                // Full-state comparison after every op.
                prop_assert_eq!(sp.live_count(), model.len());
                for (slot, tuple) in &model {
                    prop_assert_eq!(sp.get(*slot).unwrap(), tuple.as_slice());
                }
            }
        }
    }

    /// Heap file round trip with interleaved deletes and relocations.
    #[test]
    fn heap_matches_model(
        ops in prop::collection::vec((0u8..3, any::<u8>(), 1usize..60), 1..150)
    ) {
        let disk: Arc<dyn DiskManager> = Arc::new(InMemoryDisk::new(1024));
        let heap = HeapFile::create(Arc::new(BufferPool::new(disk, 64))).unwrap();
        let mut model: HashMap<nbb_storage::RecordId, Vec<u8>> = HashMap::new();
        let mut rids: Vec<nbb_storage::RecordId> = Vec::new();
        for (op, byte, len) in ops {
            match op {
                0 => {
                    let tuple = vec![byte; len];
                    if let Ok(rid) = heap.insert(&tuple) {
                        model.insert(rid, tuple);
                        rids.push(rid);
                    }
                }
                1 => {
                    if !rids.is_empty() {
                        let rid = rids[len % rids.len()];
                        let had = model.remove(&rid).is_some();
                        prop_assert_eq!(heap.delete(rid).is_ok(), had);
                    }
                }
                _ => {
                    if !rids.is_empty() {
                        let rid = rids[len % rids.len()];
                        if model.contains_key(&rid) {
                            let new_rid = heap.relocate(rid).unwrap();
                            let tuple = model.remove(&rid).unwrap();
                            model.insert(new_rid, tuple);
                            rids.push(new_rid);
                        }
                    }
                }
            }
            for (rid, tuple) in &model {
                prop_assert_eq!(&heap.get(*rid).unwrap(), tuple);
            }
            prop_assert_eq!(heap.live_tuple_count().unwrap(), model.len());
        }
    }

    /// Scans visit exactly the live set, in page order, once each.
    #[test]
    fn heap_scan_is_exact(n in 1usize..300, delete_every in 2usize..7) {
        let disk: Arc<dyn DiskManager> = Arc::new(InMemoryDisk::new(1024));
        let heap = HeapFile::create(Arc::new(BufferPool::new(disk, 64))).unwrap();
        let mut expect = std::collections::HashSet::new();
        let mut all = Vec::new();
        for i in 0..n {
            let rid = heap.insert(&(i as u64).to_le_bytes()).unwrap();
            all.push(rid);
            expect.insert(rid);
        }
        for rid in all.iter().step_by(delete_every) {
            heap.delete(*rid).unwrap();
            expect.remove(rid);
        }
        let mut seen = std::collections::HashSet::new();
        heap.scan(|rid, _| {
            assert!(seen.insert(rid), "duplicate {rid}");
            true
        }).unwrap();
        prop_assert_eq!(seen, expect);
    }
}
