//! The compressed frame tier, end to end: a same-page fault storm
//! landing on a compressed entry coalesces onto **one** decompression
//! with zero disk reads, the `flush_all` barrier drains the compressor
//! queue deterministically, dropping a pool with a gated compressor
//! never hangs, and the tier stays consistent under a concurrent
//! evict/refault grind.
//!
//! Determinism comes from [`BufferPool::set_compression_gate`] (the
//! tier's analogue of `tests/overlapped_io.rs`'s GateDisk): while held,
//! the compressor parks and tier-served faults block mid-serve, so the
//! test can *observe* every co-waiter parked via
//! [`nbb_storage::PoolStats::fault_joins`] before releasing the gate —
//! no sleep windows.

use nbb_storage::disk::{DiskManager, InMemoryDisk};
use nbb_storage::{BufferPool, PageId};
use std::sync::{Arc, Barrier};

/// Tier-enabled pool over an [`InMemoryDisk`]; write-behind is off so
/// disk-read assertions are exact.
fn cpool(cap: usize, budget: usize) -> (Arc<BufferPool>, Arc<InMemoryDisk>) {
    let disk = Arc::new(InMemoryDisk::new(256));
    let pool = Arc::new(BufferPool::with_options(
        Arc::clone(&disk) as Arc<dyn DiskManager>,
        cap,
        1,
        0,
        budget,
    ));
    (pool, disk)
}

/// Spins until the pool reports `joins` co-waiters parked on in-flight
/// loads (joiners register before they park).
fn await_joins(pool: &BufferPool, joins: u64) {
    while pool.stats().fault_joins < joins {
        std::thread::yield_now();
    }
}

/// Faults `id` once and demotes it into the tier, returning with the
/// demotion fully admitted (the flush barrier drains the compressor).
fn demote(pool: &BufferPool, id: PageId) {
    pool.with_page(id, |_| ()).unwrap();
    pool.evict_page(id).unwrap();
    pool.flush_all().unwrap();
}

#[test]
fn storm_on_compressed_entry_is_one_decompress_and_zero_disk_reads() {
    const THREADS: usize = 8;
    let (pool, disk) = cpool(8, 4096);
    let id = pool.new_page().unwrap();
    pool.with_page_mut(id, |p| p.bytes_mut()[1] = 77).unwrap();
    demote(&pool, id);
    assert_eq!(pool.stats().compressed_pages, 1);
    pool.reset_stats();
    disk.reset_stats();

    // Gate the tier: the storm's loader blocks *inside* its serve, so
    // every other thread provably parks on the Loading entry first.
    pool.set_compression_gate(true);
    let barrier = Arc::new(Barrier::new(THREADS + 1));
    let workers: Vec<_> = (0..THREADS)
        .map(|_| {
            let pool = Arc::clone(&pool);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                pool.with_page(id, |p| p.bytes()[1]).unwrap()
            })
        })
        .collect();
    barrier.wait();
    await_joins(&pool, THREADS as u64 - 1);
    pool.set_compression_gate(false);
    for w in workers {
        assert_eq!(w.join().unwrap(), 77, "every storm member sees the decompressed bytes");
    }

    let s = pool.stats();
    assert_eq!(disk.stats().reads, 0, "the tier served the storm; the disk saw nothing");
    assert_eq!(s.faults, 1, "one load for the whole storm");
    assert_eq!(s.fault_joins, THREADS as u64 - 1);
    assert_eq!(s.compressed_hits, 1, "one decompression, not one per thread");
    assert_eq!(s.decompress_stalls, THREADS as u64 - 1, "the joiners all stalled on it");
    assert_eq!(s.compressed_pages, 0, "the entry was claimed");
    assert!(s.effective_hit_rate() > s.hit_rate(), "the tier hit shows up as disk avoidance");
}

#[test]
fn flush_barrier_drains_the_compressor_queue() {
    const PAGES: u64 = 4;
    let (pool, _) = cpool(8, 16 * 1024);
    let ids: Vec<PageId> = (0..PAGES).map(|_| pool.new_page().unwrap()).collect();
    for id in &ids {
        pool.with_page(*id, |_| ()).unwrap();
    }
    // Freeze the compressor, then demote everything: the jobs pile up
    // unprocessed, so any entry count observed now would be racy — the
    // barrier is what makes it settle.
    pool.set_compression_gate(true);
    for id in &ids {
        pool.evict_page(*id).unwrap();
    }
    assert_eq!(pool.stats().compressed_pages, 0, "gated compressor admitted nothing yet");
    pool.set_compression_gate(false);
    pool.flush_all().unwrap();
    let s = pool.stats();
    assert_eq!(s.compressed_pages, PAGES, "the barrier drained every queued demotion");
    assert!(s.compression_ratio() > 1.0, "zeroed pages compress");
}

#[test]
fn dropping_a_pool_with_a_gated_compressor_does_not_hang() {
    let (pool, _) = cpool(4, 4096);
    let id = pool.new_page().unwrap();
    pool.with_page(id, |_| ()).unwrap();
    pool.set_compression_gate(true);
    pool.evict_page(id).unwrap(); // job queued behind the gate
    drop(pool); // shutdown must unjam the parked worker and join it
}

#[test]
fn evict_refault_grind_stays_consistent() {
    // Readers hammer pages whose content encodes their identity while
    // an evictor forces demotions under them: every read must see the
    // right bytes whether it was a frame hit, a decompression, or a
    // disk fault — and the pool must settle cleanly.
    const PAGES: u64 = 8;
    const READERS: usize = 2;
    const ROUNDS: usize = 1500;
    let (pool, _) = cpool(4, 8 * 1024);
    let ids: Vec<PageId> = (0..PAGES).map(|_| pool.new_page().unwrap()).collect();
    for (i, id) in ids.iter().enumerate() {
        pool.with_page_mut(*id, |p| p.bytes_mut()[0] = i as u8).unwrap();
    }
    std::thread::scope(|s| {
        for r in 0..READERS {
            let pool = &pool;
            let ids = &ids;
            s.spawn(move || {
                let mut x = 0x9E37_79B9u64.wrapping_add(r as u64);
                for _ in 0..ROUNDS {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    let i = (x % PAGES) as usize;
                    let got = pool.with_page(ids[i], |p| p.bytes()[0]).unwrap();
                    assert_eq!(got, i as u8, "page {i} served wrong bytes");
                }
            });
        }
        let pool = &pool;
        let ids = &ids;
        s.spawn(move || {
            let mut x = 0xDEAD_BEEFu64;
            for _ in 0..ROUNDS {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                // Pinned or mid-load pages refuse eviction; that's fine.
                let _ = pool.evict_page(ids[(x % PAGES) as usize]);
            }
        });
    });
    // The grind races its readers against the background compressor —
    // on a fast machine every demotion job is cancelled by a refault
    // publish before the worker runs, the queue silts up with those
    // tombstoned jobs (a full queue makes later demotions no-ops), and
    // the storm can end with nothing resident and the tier empty.
    // Settle deterministically instead of asserting on that race:
    // fault everything back in (checking the bytes), drain the storm's
    // job backlog behind the flush barrier, demote the residents onto
    // the now-empty queue, drain again so the demotions are admitted,
    // then refault — those reads *must* be tier serves, and must still
    // carry the right bytes.
    for (i, id) in ids.iter().enumerate() {
        assert_eq!(pool.with_page(*id, |p| p.bytes()[0]).unwrap(), i as u8);
    }
    pool.flush_all().unwrap();
    for id in &ids {
        pool.evict_page(*id).unwrap();
    }
    pool.flush_all().unwrap();
    assert!(pool.stats().compressed_pages > 0, "settled demotions were admitted");
    for (i, id) in ids.iter().enumerate() {
        assert_eq!(pool.with_page(*id, |p| p.bytes()[0]).unwrap(), i as u8);
    }
    let s = pool.stats();
    assert!(s.compressed_hits > 0, "settled refaults must be served by the tier");
}
