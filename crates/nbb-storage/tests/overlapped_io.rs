//! The overlapped-I/O contract, end to end: same-page fault storms
//! coalesce onto one disk read, poisoned loads propagate to every
//! parked waiter (and heal on retry), distinct cold faults in a single
//! stripe overlap instead of serializing, and dirty-victim reclaim no
//! longer pays a synchronous device write.
//!
//! Exact-count assertions (one read per storm, every waiter poisoned)
//! use [`GateDisk`], whose reads block until the test has *observed*
//! every co-waiter parked via [`nbb_storage::PoolStats::fault_joins`] —
//! no sleep window to lose a race against a loaded host. The two
//! timing assertions left are the acceptance criteria themselves, and
//! they lean on [`LatencyDisk`] *sleeping*: parked threads need no
//! CPU, so even a one-core host overlaps the waits with several-fold
//! margin.

use nbb_storage::disk::{DiskManager, DiskModel, InMemoryDisk, LatencyDisk};
use nbb_storage::error::{Result, StorageError};
use nbb_storage::stats::IoStats;
use nbb_storage::{BufferPool, Page, PageId};
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// Disk whose reads and writes can each be held at a gate until the
/// test releases them, with read-attempt counting and injectable read
/// failures (applied after the gate, so waiters are provably parked
/// before the poison lands).
struct GateDisk {
    inner: InMemoryDisk,
    /// (reads_held, writes_held)
    held: Mutex<(bool, bool)>,
    cv: Condvar,
    fail_reads: AtomicBool,
    /// Fail any read touching exactly this page id (`u64::MAX` =
    /// none). A `read_many` batch containing it fails **as a whole** —
    /// exercising the contract's "a batch error makes no claim about
    /// which pages landed" clause and the pool's per-page fallback.
    fail_page: AtomicU64,
    panic_reads: AtomicBool,
    read_attempts: AtomicU64,
    /// Sizes of the `read_many` batches that reached the disk.
    read_batches: Mutex<Vec<usize>>,
}

impl GateDisk {
    fn new(page_size: usize) -> Self {
        GateDisk {
            inner: InMemoryDisk::new(page_size),
            held: Mutex::new((false, false)),
            cv: Condvar::new(),
            fail_reads: AtomicBool::new(false),
            fail_page: AtomicU64::new(u64::MAX),
            panic_reads: AtomicBool::new(false),
            read_attempts: AtomicU64::new(0),
            read_batches: Mutex::new(Vec::new()),
        }
    }

    fn hold_reads(&self) {
        self.held.lock().0 = true;
    }

    fn release_reads(&self) {
        self.held.lock().0 = false;
        self.cv.notify_all();
    }

    fn hold_writes(&self) {
        self.held.lock().1 = true;
    }

    fn release_writes(&self) {
        self.held.lock().1 = false;
        self.cv.notify_all();
    }
}

impl DiskManager for GateDisk {
    fn page_size(&self) -> usize {
        self.inner.page_size()
    }
    fn allocate(&self) -> Result<PageId> {
        self.inner.allocate()
    }
    fn read(&self, id: PageId, buf: &mut Page) -> Result<()> {
        self.read_attempts.fetch_add(1, Ordering::Relaxed);
        let mut held = self.held.lock();
        while held.0 {
            self.cv.wait(&mut held);
        }
        drop(held);
        if self.panic_reads.load(Ordering::Relaxed) {
            panic!("injected read panic");
        }
        if self.fail_reads.load(Ordering::Relaxed) || self.fail_page.load(Ordering::Relaxed) == id.0
        {
            return Err(StorageError::Io("injected read failure".into()));
        }
        self.inner.read(id, buf)
    }
    fn read_many(&self, pages: &mut [(PageId, &mut Page)]) -> Result<()> {
        self.read_batches.lock().push(pages.len());
        let mut held = self.held.lock();
        while held.0 {
            self.cv.wait(&mut held);
        }
        drop(held);
        if self.panic_reads.load(Ordering::Relaxed) {
            panic!("injected read panic");
        }
        let fail = self.fail_page.load(Ordering::Relaxed);
        if self.fail_reads.load(Ordering::Relaxed) || pages.iter().any(|(id, _)| id.0 == fail) {
            return Err(StorageError::Io("injected batch read failure".into()));
        }
        for (id, buf) in pages.iter_mut() {
            self.inner.read(*id, buf)?;
        }
        Ok(())
    }
    fn write(&self, id: PageId, page: &Page) -> Result<()> {
        let mut held = self.held.lock();
        while held.1 {
            self.cv.wait(&mut held);
        }
        drop(held);
        self.inner.write(id, page)
    }
    fn num_pages(&self) -> u64 {
        self.inner.num_pages()
    }
    fn stats(&self) -> IoStats {
        self.inner.stats()
    }
    fn reset_stats(&self) {
        self.inner.reset_stats()
    }
}

/// Spins until the pool reports `joins` co-waiters parked on in-flight
/// loads. Joiners register before they park, so once this returns the
/// storm has fully coalesced.
fn await_joins(pool: &BufferPool, joins: u64) {
    while pool.stats().fault_joins < joins {
        std::thread::yield_now();
    }
}

#[test]
fn same_page_fault_storm_issues_exactly_one_read() {
    const THREADS: usize = 8;
    let disk = Arc::new(GateDisk::new(512));
    let pool =
        Arc::new(BufferPool::with_options(Arc::clone(&disk) as Arc<dyn DiskManager>, 8, 1, 64, 0));
    let id = pool.new_page().unwrap();
    let mut page = Page::new(512);
    page.bytes_mut()[0] = 123;
    disk.write(id, &page).unwrap();
    disk.reset_stats();

    // All threads miss on the same cold page: one becomes the loader
    // (blocked at the read gate), the rest must park on the in-flight
    // load. The gate only opens once every other thread is provably
    // parked, so the exactly-one-read assertion cannot race.
    disk.hold_reads();
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            let pool = Arc::clone(&pool);
            s.spawn(move || {
                let v = pool.with_page(id, |p| p.bytes()[0]).unwrap();
                assert_eq!(v, 123, "waiter observed the loaded page");
            });
        }
        await_joins(&pool, (THREADS - 1) as u64);
        disk.release_reads();
    });

    assert_eq!(disk.stats().reads, 1, "N concurrent missers, one disk read");
    assert_eq!(disk.read_attempts.load(Ordering::Relaxed), 1);
    let s = pool.stats();
    assert_eq!(s.faults, 1);
    assert_eq!(s.fault_joins, (THREADS - 1) as u64, "everyone else joined the in-flight load");
    assert_eq!(s.misses, THREADS as u64);
}

#[test]
fn poisoned_load_fails_every_waiter_then_retry_succeeds() {
    const THREADS: usize = 6;
    let disk = Arc::new(GateDisk::new(512));
    let pool =
        Arc::new(BufferPool::with_options(Arc::clone(&disk) as Arc<dyn DiskManager>, 8, 1, 64, 0));
    let id = pool.new_page().unwrap();
    let mut page = Page::new(512);
    page.bytes_mut()[0] = 77;
    disk.write(id, &page).unwrap();

    // Poison lands only after every co-waiter is parked on the load.
    disk.fail_reads.store(true, Ordering::Relaxed);
    disk.hold_reads();
    let errors = AtomicU64::new(0);
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            let pool = Arc::clone(&pool);
            let errors = &errors;
            s.spawn(move || match pool.with_page(id, |p| p.bytes()[0]) {
                Err(StorageError::Io(msg)) => {
                    assert!(msg.contains("injected"), "waiters get the load's error: {msg}");
                    errors.fetch_add(1, Ordering::Relaxed);
                }
                other => panic!("expected the injected I/O error, got {other:?}"),
            });
        }
        await_joins(&pool, (THREADS - 1) as u64);
        disk.release_reads();
    });
    assert_eq!(
        errors.load(Ordering::Relaxed),
        THREADS as u64,
        "the poisoned load must propagate to every parked waiter"
    );
    assert_eq!(
        disk.read_attempts.load(Ordering::Relaxed),
        1,
        "the storm still coalesced onto one (failed) read"
    );

    // The failed load must not leave a zombie frame pinned: the next
    // attempt faults afresh and succeeds.
    disk.fail_reads.store(false, Ordering::Relaxed);
    assert_eq!(pool.with_page(id, |p| p.bytes()[0]).unwrap(), 77);
    assert_eq!(disk.read_attempts.load(Ordering::Relaxed), 2, "retry faulted afresh");
}

#[test]
fn distinct_cold_faults_overlap_within_one_stripe() {
    const K: usize = 8;
    const READ_MS: u64 = 50;
    // Single shard: before the fault state machine, these K faults
    // serialized behind the one shard mutex at ~K × read latency.
    let disk =
        Arc::new(LatencyDisk::new(512, DiskModel { read_ns: READ_MS * 1_000_000, write_ns: 0 }));
    let pool =
        Arc::new(BufferPool::with_options(Arc::clone(&disk) as Arc<dyn DiskManager>, 16, 1, 64, 0));
    assert_eq!(pool.shards(), 1);
    let ids: Vec<PageId> = (0..K).map(|_| pool.new_page().unwrap()).collect();
    for (i, id) in ids.iter().enumerate() {
        let mut page = Page::new(512);
        page.bytes_mut()[0] = i as u8;
        disk.write(*id, &page).unwrap();
    }
    disk.reset_stats();

    let barrier = Arc::new(Barrier::new(K));
    let start = Instant::now();
    std::thread::scope(|s| {
        for (i, id) in ids.iter().enumerate() {
            let pool = Arc::clone(&pool);
            let barrier = Arc::clone(&barrier);
            let id = *id;
            s.spawn(move || {
                barrier.wait();
                let v = pool.with_page(id, |p| p.bytes()[0]).unwrap();
                assert_eq!(v, i as u8);
            });
        }
    });
    let wall = start.elapsed();

    assert_eq!(disk.stats().reads, K as u64, "every page cold-faulted once");
    let serialized = Duration::from_millis(READ_MS * K as u64);
    let speedup = serialized.as_secs_f64() / wall.as_secs_f64();
    // Acceptance bar: ≥ 3× at k=8 (expected ~K× — the waits are sleeps,
    // so even a loaded one-core host overlaps them; the bar leaves
    // ~130ms of scheduling slack against a ~50ms expected wall).
    assert!(
        speedup >= 3.0,
        "k={K} distinct cold faults must overlap in one stripe: \
         {wall:?} wall vs {serialized:?} serialized ({speedup:.1}x, need >= 3x)"
    );
    let s = pool.stats();
    assert_eq!(s.faults, K as u64);
    assert_eq!(s.fault_joins, 0, "distinct pages never park on each other");
}

#[test]
fn dirty_victim_reclaim_skips_the_synchronous_write() {
    const PAGES: u64 = 16;
    const WRITE_MS: u64 = 10;
    let model = DiskModel { read_ns: 0, write_ns: WRITE_MS * 1_000_000 };

    // One timed pass of a working set that overflows a 4-frame pool,
    // dirtying every page: each fault must reclaim a dirty victim.
    let run = |write_behind: usize| -> (Duration, u64) {
        let disk = Arc::new(LatencyDisk::new(512, model));
        let pool = BufferPool::with_options(
            Arc::clone(&disk) as Arc<dyn DiskManager>,
            4,
            1,
            write_behind,
            0,
        );
        let ids: Vec<PageId> = (0..PAGES).map(|_| pool.new_page().unwrap()).collect();
        let start = Instant::now();
        for (i, id) in ids.iter().enumerate() {
            pool.with_page_mut(*id, |p| p.bytes_mut()[0] = i as u8).unwrap();
        }
        let reclaim = start.elapsed();
        // Untimed barrier: correctness must be identical in both modes.
        pool.flush_all().unwrap();
        for (i, id) in ids.iter().enumerate() {
            let mut page = Page::new(512);
            disk.read(*id, &mut page).unwrap();
            assert_eq!(page.bytes()[0], i as u8, "mode wb={write_behind}: page {i} lost");
        }
        (reclaim, pool.stats().writebacks)
    };

    let (sync_time, sync_wb) = run(0);
    let (wb_time, wb_wb) = run(64);
    assert_eq!(sync_wb, wb_wb, "both modes hand off the same dirty victims");
    assert!(sync_wb >= PAGES - 4, "working set must actually churn dirty victims");
    // The bar: write-behind reclaim is a memcpy, not a device wait.
    // Synchronous mode pays >= 12 × 10ms in the timed loop; write-behind
    // is expected around a millisecond.
    assert!(
        wb_time.as_secs_f64() * 3.0 < sync_time.as_secs_f64(),
        "dirty eviction must not pay a synchronous write: \
         wb {wb_time:?} vs sync {sync_time:?}"
    );
}

#[test]
fn fault_storm_over_write_behind_store_skips_the_disk() {
    // A dirty page parked in the write-behind queue is re-faulted by a
    // storm of readers: bytes come from the store (no disk read), and
    // the page re-enters memory dirty so nothing is ever lost. The
    // write gate keeps the flusher from retiring the queue entry early,
    // so "served from the store" is deterministic.
    let disk = Arc::new(GateDisk::new(512));
    let pool =
        Arc::new(BufferPool::with_options(Arc::clone(&disk) as Arc<dyn DiskManager>, 4, 1, 64, 0));
    let id = pool.new_page().unwrap();
    pool.with_page_mut(id, |p| p.bytes_mut()[0] = 55).unwrap();
    disk.hold_writes();
    pool.evict_page(id).unwrap();
    disk.reset_stats();
    let barrier = Arc::new(Barrier::new(4));
    std::thread::scope(|s| {
        for _ in 0..4 {
            let pool = Arc::clone(&pool);
            let barrier = Arc::clone(&barrier);
            s.spawn(move || {
                barrier.wait();
                assert_eq!(pool.with_page(id, |p| p.bytes()[0]).unwrap(), 55);
            });
        }
    });
    assert_eq!(disk.stats().reads, 0, "write-behind store served the fault");
    disk.release_writes();
    pool.flush_all().unwrap();
    let mut page = Page::new(512);
    disk.read(id, &mut page).unwrap();
    assert_eq!(page.bytes()[0], 55);
}

#[test]
fn panicking_load_poisons_waiters_and_frees_the_frame() {
    // A DiskManager implementation that panics mid-read must unwind
    // like a failed read: the Loading entry is removed, the reserved
    // frame goes back to the free list unpinned, and every parked
    // waiter gets an error instead of hanging forever.
    const THREADS: usize = 4;
    let disk = Arc::new(GateDisk::new(512));
    let pool =
        Arc::new(BufferPool::with_options(Arc::clone(&disk) as Arc<dyn DiskManager>, 8, 1, 64, 0));
    let id = pool.new_page().unwrap();
    let mut page = Page::new(512);
    page.bytes_mut()[0] = 44;
    disk.write(id, &page).unwrap();

    disk.panic_reads.store(true, Ordering::Relaxed);
    disk.hold_reads();
    // Any of the threads may become the loader (and die with the
    // panic); the others must all surface the poison as an error.
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let pool = Arc::clone(&pool);
            std::thread::spawn(move || pool.with_page(id, |p| p.bytes()[0]))
        })
        .collect();
    await_joins(&pool, (THREADS - 1) as u64);
    disk.release_reads();

    let mut panicked = 0;
    let mut poisoned = 0;
    for h in handles {
        match h.join() {
            Err(_) => panicked += 1, // the loader re-raises the disk's panic
            Ok(Err(StorageError::Io(msg))) => {
                assert!(msg.contains("panicked"), "waiter error names the panic: {msg}");
                poisoned += 1;
            }
            Ok(other) => panic!("expected panic or poison, got {other:?}"),
        }
    }
    assert_eq!(panicked, 1, "exactly one thread was the loader");
    assert_eq!(poisoned, THREADS - 1, "every waiter was poisoned, none hung");

    // No zombie frame: the page faults afresh and succeeds, and the
    // whole pool is still usable (all frames reachable).
    disk.panic_reads.store(false, Ordering::Relaxed);
    assert_eq!(pool.with_page(id, |p| p.bytes()[0]).unwrap(), 44);
    for _ in 0..16 {
        let p2 = pool.new_page().unwrap();
        pool.with_page(p2, |_| ()).unwrap();
    }
}

/// Allocates `n` cold pages on `disk` with recognizable content
/// (`id + 1` at byte 0), without warming the pool.
fn seed_cold_pages(disk: &GateDisk, n: usize) -> Vec<PageId> {
    (0..n)
        .map(|i| {
            let id = disk.allocate().unwrap();
            let mut page = Page::new(disk.page_size());
            page.bytes_mut()[0] = i as u8 + 1;
            disk.write(id, &page).unwrap();
            id
        })
        .collect()
}

#[test]
fn failing_page_in_batch_poisons_only_its_own_entry() {
    let disk = Arc::new(GateDisk::new(512));
    let pool =
        Arc::new(BufferPool::with_options(Arc::clone(&disk) as Arc<dyn DiskManager>, 8, 1, 64, 0));
    let ids = seed_cold_pages(&disk, 4);
    let bad = ids[2];
    disk.fail_page.store(bad.0, Ordering::Relaxed);

    // The whole batch rides one read_many, which fails as a unit; the
    // pool's per-page fallback must then land every sibling and pin
    // the failure on the one genuinely bad page.
    let err = pool.fault_many(&ids).unwrap_err();
    assert!(matches!(err, StorageError::Io(_)), "the bad page's error surfaces: {err:?}");
    assert_eq!(disk.read_batches.lock().as_slice(), &[4], "one batch carried all four pages");
    for &id in &ids {
        if id == bad {
            assert!(!pool.contains(id), "the failed page must not publish");
        } else {
            assert!(pool.contains(id), "sibling {id} must publish despite the batch error");
        }
    }
    let s = pool.stats();
    assert_eq!(s.read_batches, 1);
    assert_eq!(s.read_pages, 4);

    // Retry heals: no zombie Loading entry, no leaked frame.
    disk.fail_page.store(u64::MAX, Ordering::Relaxed);
    assert_eq!(pool.with_page(bad, |p| p.bytes()[0]).unwrap(), 3);
}

#[test]
fn batch_fault_failure_poisons_only_its_own_parked_joiners() {
    let disk = Arc::new(GateDisk::new(512));
    let pool =
        Arc::new(BufferPool::with_options(Arc::clone(&disk) as Arc<dyn DiskManager>, 8, 1, 64, 0));
    let ids = seed_cold_pages(&disk, 2);
    let (good, bad) = (ids[0], ids[1]);
    disk.fail_page.store(bad.0, Ordering::Relaxed);
    disk.hold_reads();

    // The batch thread reserves both Loading entries, then blocks at
    // the read gate inside read_many.
    let batcher = {
        let pool = Arc::clone(&pool);
        let ids = ids.clone();
        std::thread::spawn(move || pool.fault_many(&ids))
    };
    // One joiner per page parks on the batch's in-flight entries; the
    // gate only opens once both are provably parked.
    let join_good = {
        let pool = Arc::clone(&pool);
        std::thread::spawn(move || pool.with_page(good, |p| p.bytes()[0]))
    };
    let join_bad = {
        let pool = Arc::clone(&pool);
        std::thread::spawn(move || pool.with_page(bad, |p| p.bytes()[0]))
    };
    await_joins(&pool, 2);
    disk.release_reads();

    assert!(batcher.join().unwrap().is_err(), "the batch surfaces the bad page's error");
    assert_eq!(join_good.join().unwrap().unwrap(), 1, "the good page's joiner got its bytes");
    let err = join_bad.join().unwrap().unwrap_err();
    assert!(matches!(err, StorageError::Io(_)), "the bad page's joiner was poisoned: {err:?}");
    let s = pool.stats();
    assert_eq!(s.fault_joins, 2, "both joiners parked instead of re-reading");
    assert!(pool.contains(good));
    assert!(!pool.contains(bad));

    // Retry heals the poisoned page.
    disk.fail_page.store(u64::MAX, Ordering::Relaxed);
    assert_eq!(pool.with_page(bad, |p| p.bytes()[0]).unwrap(), 2);
}
