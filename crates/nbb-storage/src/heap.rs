//! Heap files: unordered tuple storage over slotted pages.
//!
//! Placement is *append-oriented* (new tuples go to the tail page), which
//! is exactly the strategy whose locality waste §3.1 analyses: hot tuples
//! end up scattered across the whole file. The hot/cold clustering in
//! `nbb-partition` is implemented as delete-then-append on this API, the
//! same mechanism the paper uses ("relocates hot tuples by deleting then
//! appending them to the end of the table").

use crate::buffer::BufferPool;
use crate::error::{Result, StorageError};
use crate::lockrank;
use crate::page::PageId;
use crate::rid::RecordId;
use crate::slotted::{SlottedPage, SlottedPageRef};
use parking_lot::RwLock;
use std::sync::Arc;

/// An unordered collection of tuples with stable [`RecordId`]s.
pub struct HeapFile {
    pool: Arc<BufferPool>,
    pages: RwLock<Vec<PageId>>,
}

impl HeapFile {
    /// Creates an empty heap file on `pool`.
    pub fn create(pool: Arc<BufferPool>) -> Result<Self> {
        let heap =
            HeapFile { pool, pages: RwLock::with_rank(lockrank::HEAP_DIRECTORY, Vec::new()) };
        heap.grow()?;
        Ok(heap)
    }

    /// Reattaches a heap persisted on `pool`'s disk from its page list
    /// (the caller's catalog records [`HeapFile::page_ids`] at shutdown).
    /// Every page is validated as a slotted page.
    pub fn attach(pool: Arc<BufferPool>, pages: Vec<PageId>) -> Result<Self> {
        if pages.is_empty() {
            return Self::create(pool);
        }
        for pid in &pages {
            pool.with_page(*pid, |p| SlottedPageRef::attach(p).map(|_| ()))??;
        }
        Ok(HeapFile { pool, pages: RwLock::with_rank(lockrank::HEAP_DIRECTORY, pages) })
    }

    fn grow(&self) -> Result<PageId> {
        let (id, ()) = self.pool.new_page_with(|p| {
            SlottedPage::init(p);
        })?;
        self.pages.write().push(id);
        Ok(id)
    }

    /// The buffer pool this heap lives on.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// Page ids belonging to this heap, in allocation (append) order.
    pub fn page_ids(&self) -> Vec<PageId> {
        self.pages.read().clone()
    }

    /// Number of pages in the heap.
    pub fn page_count(&self) -> usize {
        self.pages.read().len()
    }

    /// Appends a tuple, returning its address.
    ///
    /// Tries the tail page first; allocates a new tail when full.
    pub fn insert(&self, tuple: &[u8]) -> Result<RecordId> {
        // nbb-lint: allow(unwrap, heaps are created with one page and never shrink)
        let tail = *self.pages.read().last().expect("heap always has >= 1 page");
        let res = self.pool.with_page_mut(tail, |p| {
            let mut sp = SlottedPage::attach(p)?;
            sp.insert(tuple)
        })?;
        match res {
            Ok(slot) => Ok(RecordId::new(tail, slot)),
            Err(StorageError::PageFull { .. }) | Err(StorageError::TupleTooLarge { .. }) => {
                let fresh = self.grow()?;
                let slot = self.pool.with_page_mut(fresh, |p| {
                    let mut sp = SlottedPage::attach(p)?;
                    sp.insert(tuple)
                })??;
                Ok(RecordId::new(fresh, slot))
            }
            Err(e) => Err(e),
        }
    }

    /// Appends a batch of tuples, returning their addresses indexed
    /// like `tuples`.
    ///
    /// The write-side analogue of [`HeapFile::get_many`]: instead of one
    /// pin + one page latch + one slotted-page parse per tuple, the
    /// batch fills each tail page under a **single** exclusive page
    /// access — N appends cost one latch round-trip per *page touched*
    /// (≈ N·width/page_size pages), not per tuple. Placement is
    /// identical to a loop of [`HeapFile::insert`] calls: tail page
    /// first, growing a fresh tail when full.
    ///
    /// A structurally unstorable tuple (empty, or larger than any page
    /// can hold) fails the batch at that tuple; earlier tuples remain
    /// appended, exactly as the equivalent insert loop would leave them.
    pub fn append_many<T: AsRef<[u8]>>(&self, tuples: &[T]) -> Result<Vec<RecordId>> {
        let mut out = Vec::with_capacity(tuples.len());
        // After the batch fills a page, it continues on the page its
        // OWN grow() returned (like `insert` does) instead of
        // re-reading the shared tail: two racing batches that both
        // grow would otherwise pile onto whichever page became the
        // tail last, orphaning the other fresh page empty forever.
        let mut next_tail: Option<PageId> = None;
        while out.len() < tuples.len() {
            let tail = match next_tail.take() {
                Some(pid) => pid,
                // nbb-lint: allow(unwrap, heaps are created with one page and never shrink)
                None => *self.pages.read().last().expect("heap always has >= 1 page"),
            };
            let done = out.len();
            let slots = self.pool.with_page_mut(tail, |p| -> Result<Vec<u16>> {
                let mut sp = SlottedPage::attach(p)?;
                let mut slots = Vec::new();
                for t in &tuples[done..] {
                    match sp.insert(t.as_ref()) {
                        Ok(slot) => slots.push(slot),
                        // Full page: the rest of the batch continues on
                        // a fresh tail. (An empty page never reports
                        // PageFull — a tuple too big for any page errors
                        // as TupleTooLarge below — so every grow makes
                        // progress.)
                        Err(StorageError::PageFull { .. }) => break,
                        // Oversized/empty tuples fail on every page;
                        // retrying them on a fresh tail would loop.
                        Err(e) => return Err(e),
                    }
                }
                Ok(slots)
            })??;
            out.extend(slots.into_iter().map(|slot| RecordId::new(tail, slot)));
            if out.len() < tuples.len() {
                next_tail = Some(self.grow()?);
            }
        }
        Ok(out)
    }

    /// Copies the tuple at `rid` out of the page.
    pub fn get(&self, rid: RecordId) -> Result<Vec<u8>> {
        self.with_tuple(rid, |t| t.to_vec())
    }

    /// Runs `f` over the tuple bytes at `rid` without copying.
    pub fn with_tuple<R>(&self, rid: RecordId, f: impl FnOnce(&[u8]) -> R) -> Result<R> {
        self.pool.with_page(rid.page, |p| {
            let sp = SlottedPageRef::attach(p)?;
            let t = sp
                .get(rid.slot)
                .map_err(|_| StorageError::InvalidSlot { page: rid.page.0, slot: rid.slot })?;
            Ok(f(t))
        })?
    }

    /// Fetches many tuples at once, visiting each distinct page exactly
    /// once through the pool's batched pin path
    /// ([`BufferPool::with_page_batch`]): N rids on the same page cost
    /// one pin and one slotted-page parse instead of N of each.
    ///
    /// Results are indexed like `rids`. A rid whose slot is no longer
    /// live reads as `None` (batch readers tolerate racing deletes the
    /// same way index→heap chases do); other errors propagate.
    pub fn get_many(&self, rids: &[RecordId]) -> Result<Vec<Option<Vec<u8>>>> {
        // Distinct pages, each carrying the positions that live on it.
        let mut pages: Vec<PageId> = Vec::new();
        let mut members: Vec<Vec<usize>> = Vec::new();
        let mut page_slot: std::collections::HashMap<PageId, usize> =
            std::collections::HashMap::new();
        for (i, rid) in rids.iter().enumerate() {
            let pi = *page_slot.entry(rid.page).or_insert_with(|| {
                pages.push(rid.page);
                members.push(Vec::new());
                pages.len() - 1
            });
            members[pi].push(i);
        }
        let mut out: Vec<Option<Vec<u8>>> = rids.iter().map(|_| None).collect();
        let page_results = self.pool.with_page_batch(&pages, |pi, p| -> Result<Vec<_>> {
            let sp = SlottedPageRef::attach(p)?;
            Ok(members[pi]
                .iter()
                .map(|&i| (i, sp.get(rids[i].slot).ok().map(|t| t.to_vec())))
                .collect())
        })?;
        for r in page_results {
            for (i, tuple) in r? {
                out[i] = tuple;
            }
        }
        Ok(out)
    }

    /// Deletes the tuple at `rid`.
    pub fn delete(&self, rid: RecordId) -> Result<()> {
        self.pool.with_page_mut(rid.page, |p| {
            let mut sp = SlottedPage::attach(p)?;
            sp.delete(rid.slot)
                .map_err(|_| StorageError::InvalidSlot { page: rid.page.0, slot: rid.slot })
        })?
    }

    /// Overwrites the tuple at `rid` in place (same RID afterwards).
    pub fn update(&self, rid: RecordId, tuple: &[u8]) -> Result<()> {
        self.pool.with_page_mut(rid.page, |p| {
            let mut sp = SlottedPage::attach(p)?;
            match sp.update(rid.slot, tuple) {
                Err(StorageError::PageFull { .. }) => {
                    // Compact and retry once: dead bytes may suffice.
                    sp.compact();
                    sp.update(rid.slot, tuple)
                }
                other => other,
            }
        })?
    }

    /// Moves a tuple to the tail of the heap (delete + append), returning
    /// its new address. This is the paper's clustering primitive.
    pub fn relocate(&self, rid: RecordId) -> Result<RecordId> {
        let bytes = self.get(rid)?;
        self.delete(rid)?;
        self.insert(&bytes)
    }

    /// Visits every live tuple as `(rid, bytes)` in page order. The
    /// callback returns `true` to keep walking; returning `false` stops
    /// the scan immediately, without touching the remaining pages.
    pub fn scan(&self, mut f: impl FnMut(RecordId, &[u8]) -> bool) -> Result<()> {
        for pid in self.page_ids() {
            let keep_going = self.pool.with_page(pid, |p| -> Result<bool> {
                let sp = SlottedPageRef::attach(p)?;
                for (slot, tuple) in sp.iter() {
                    if !f(RecordId::new(pid, slot), tuple) {
                        return Ok(false);
                    }
                }
                Ok(true)
            })??;
            if !keep_going {
                break;
            }
        }
        Ok(())
    }

    /// Total live tuples across all pages.
    pub fn live_tuple_count(&self) -> Result<usize> {
        let mut n = 0;
        for pid in self.page_ids() {
            n += self
                .pool
                .with_page(pid, |p| SlottedPageRef::attach(p).map(|sp| sp.live_count()))??;
        }
        Ok(n)
    }

    /// Mean fill factor across the heap's pages — the §3.1 utilization
    /// metric ("heap pages that contain as little as 2% of frequently
    /// queried data").
    pub fn avg_fill_factor(&self) -> Result<f64> {
        let pages = self.page_ids();
        if pages.is_empty() {
            return Ok(0.0);
        }
        let mut total = 0.0;
        for pid in &pages {
            total += self
                .pool
                .with_page(*pid, |p| SlottedPageRef::attach(p).map(|sp| sp.fill_factor()))??;
        }
        Ok(total / pages.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::{DiskManager, InMemoryDisk};

    fn heap() -> HeapFile {
        let disk: Arc<dyn DiskManager> = Arc::new(InMemoryDisk::new(512));
        let pool = Arc::new(BufferPool::new(disk, 16));
        HeapFile::create(pool).unwrap()
    }

    #[test]
    fn insert_get_round_trip() {
        let h = heap();
        let rid = h.insert(b"tuple-one").unwrap();
        assert_eq!(h.get(rid).unwrap(), b"tuple-one");
    }

    #[test]
    fn spills_to_new_pages() {
        let h = heap();
        let mut rids = Vec::new();
        for i in 0..100u32 {
            rids.push(h.insert(&i.to_le_bytes()).unwrap());
        }
        assert!(h.page_count() > 1, "100 tuples should not fit one 512B page");
        for (i, rid) in rids.iter().enumerate() {
            assert_eq!(h.get(*rid).unwrap(), (i as u32).to_le_bytes());
        }
        assert_eq!(h.live_tuple_count().unwrap(), 100);
    }

    #[test]
    fn delete_then_get_fails() {
        let h = heap();
        let rid = h.insert(b"x").unwrap();
        h.delete(rid).unwrap();
        assert!(h.get(rid).is_err());
        assert_eq!(h.live_tuple_count().unwrap(), 0);
    }

    #[test]
    fn update_in_place_preserves_rid() {
        let h = heap();
        let rid = h.insert(b"aaaaaaaa").unwrap();
        h.update(rid, b"bb").unwrap();
        assert_eq!(h.get(rid).unwrap(), b"bb");
        h.update(rid, b"cccccccccccc").unwrap();
        assert_eq!(h.get(rid).unwrap(), b"cccccccccccc");
    }

    #[test]
    fn relocate_moves_to_tail() {
        let h = heap();
        let first = h.insert(b"hot-tuple").unwrap();
        for i in 0..80u32 {
            h.insert(&i.to_le_bytes()).unwrap();
        }
        let moved = h.relocate(first).unwrap();
        assert_ne!(first, moved);
        assert!(moved.page >= first.page);
        assert_eq!(h.get(moved).unwrap(), b"hot-tuple");
        assert!(h.get(first).is_err(), "old rid must be dead");
    }

    #[test]
    fn scan_visits_everything_once() {
        let h = heap();
        let mut expect = std::collections::HashSet::new();
        for i in 0..50u32 {
            let rid = h.insert(&i.to_le_bytes()).unwrap();
            expect.insert(rid);
        }
        let mut seen = std::collections::HashSet::new();
        h.scan(|rid, _| {
            assert!(seen.insert(rid), "duplicate rid {rid}");
            true
        })
        .unwrap();
        assert_eq!(seen, expect);
    }

    #[test]
    fn scan_early_exit_stops_the_walk() {
        let h = heap();
        for i in 0..100u32 {
            h.insert(&i.to_le_bytes()).unwrap();
        }
        let mut visited = 0;
        h.scan(|_, _| {
            visited += 1;
            visited < 7
        })
        .unwrap();
        assert_eq!(visited, 7, "scan must stop as soon as the callback says so");
    }

    #[test]
    fn get_many_matches_point_gets() {
        let h = heap();
        let mut rids = Vec::new();
        for i in 0..150u32 {
            rids.push(h.insert(&i.to_le_bytes()).unwrap());
        }
        // Delete a few so the batch sees dead slots.
        h.delete(rids[10]).unwrap();
        h.delete(rids[77]).unwrap();
        // Unsorted, with duplicates.
        let asked: Vec<RecordId> =
            vec![rids[140], rids[3], rids[10], rids[3], rids[77], rids[0], rids[149]];
        let got = h.get_many(&asked).unwrap();
        assert_eq!(got.len(), asked.len());
        for (i, rid) in asked.iter().enumerate() {
            assert_eq!(got[i], h.get(*rid).ok(), "position {i}");
        }
    }

    #[test]
    fn get_many_under_memory_pressure() {
        let disk: Arc<dyn DiskManager> = Arc::new(InMemoryDisk::new(512));
        let pool = Arc::new(BufferPool::new(disk, 2));
        let h = HeapFile::create(pool).unwrap();
        let rids: Vec<RecordId> =
            (0..200u32).map(|i| h.insert(&i.to_le_bytes()).unwrap()).collect();
        let got = h.get_many(&rids).unwrap();
        for (i, t) in got.iter().enumerate() {
            assert_eq!(t.as_deref(), Some(&(i as u32).to_le_bytes()[..]));
        }
    }

    #[test]
    fn append_many_matches_insert_loop() {
        let h = heap();
        let tuples: Vec<Vec<u8>> = (0..150u32).map(|i| i.to_le_bytes().to_vec()).collect();
        let rids = h.append_many(&tuples).unwrap();
        assert_eq!(rids.len(), tuples.len());
        for (i, rid) in rids.iter().enumerate() {
            assert_eq!(h.get(*rid).unwrap(), tuples[i], "position {i}");
        }
        assert!(h.page_count() > 1, "batch must spill across pages");
        assert_eq!(h.live_tuple_count().unwrap(), 150);
        // Appends continue on the same heap, mixing freely with singles.
        let solo = h.insert(b"solo").unwrap();
        let more = h.append_many(&[b"x".to_vec(), b"y".to_vec()]).unwrap();
        assert_eq!(h.get(solo).unwrap(), b"solo");
        assert_eq!(h.get(more[1]).unwrap(), b"y");
    }

    #[test]
    fn append_many_empty_batch_is_noop() {
        let h = heap();
        let rids = h.append_many(&Vec::<Vec<u8>>::new()).unwrap();
        assert!(rids.is_empty());
        assert_eq!(h.live_tuple_count().unwrap(), 0);
    }

    #[test]
    fn append_many_oversized_tuple_fails_after_earlier_appends() {
        let h = heap();
        let batch: Vec<Vec<u8>> = vec![b"ok-1".to_vec(), vec![1u8; 1000], b"ok-2".to_vec()];
        assert!(matches!(h.append_many(&batch), Err(StorageError::TupleTooLarge { .. })));
        // The tuple before the oversized one landed, like a loop would.
        assert_eq!(h.live_tuple_count().unwrap(), 1);
        let rid = h.insert(b"still-usable").unwrap();
        assert_eq!(h.get(rid).unwrap(), b"still-usable");
    }

    #[test]
    fn avg_fill_factor_rises_with_content() {
        let h = heap();
        let empty = h.avg_fill_factor().unwrap();
        for i in 0..40u64 {
            h.insert(&i.to_le_bytes()).unwrap();
        }
        let filled = h.avg_fill_factor().unwrap();
        assert!(filled > empty);
    }

    #[test]
    fn works_under_memory_pressure() {
        // Pool smaller than the heap: every op may trigger eviction.
        let disk: Arc<dyn DiskManager> = Arc::new(InMemoryDisk::new(512));
        let pool = Arc::new(BufferPool::new(disk, 2));
        let h = HeapFile::create(pool).unwrap();
        let mut rids = Vec::new();
        for i in 0..200u32 {
            rids.push(h.insert(&i.to_le_bytes()).unwrap());
        }
        for (i, rid) in rids.iter().enumerate() {
            assert_eq!(h.get(*rid).unwrap(), (i as u32).to_le_bytes());
        }
    }

    #[test]
    fn oversized_tuple_errors_cleanly() {
        let h = heap();
        let big = vec![1u8; 1000];
        assert!(matches!(h.insert(&big), Err(StorageError::TupleTooLarge { .. })));
        // heap still usable
        let rid = h.insert(b"ok").unwrap();
        assert_eq!(h.get(rid).unwrap(), b"ok");
    }
}
