//! Shared I/O and buffer-pool statistics counters.

use std::sync::atomic::{AtomicU64, Ordering};

/// Snapshot of disk-level I/O activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IoStats {
    /// Number of page reads served by the disk.
    pub reads: u64,
    /// Number of page writes applied to the disk.
    pub writes: u64,
    /// Simulated time spent in reads, in nanoseconds (0 for unmodeled disks).
    pub sim_read_ns: u64,
    /// Simulated time spent in writes, in nanoseconds.
    pub sim_write_ns: u64,
}

impl IoStats {
    /// Total simulated I/O time in nanoseconds.
    pub fn sim_total_ns(&self) -> u64 {
        self.sim_read_ns + self.sim_write_ns
    }
}

/// Thread-safe accumulator behind every disk implementation.
#[derive(Debug, Default)]
pub struct AtomicIoStats {
    reads: AtomicU64,
    writes: AtomicU64,
    sim_read_ns: AtomicU64,
    sim_write_ns: AtomicU64,
}

impl AtomicIoStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one read costing `sim_ns` simulated nanoseconds.
    #[inline]
    pub fn record_read(&self, sim_ns: u64) {
        self.reads.fetch_add(1, Ordering::Relaxed);
        self.sim_read_ns.fetch_add(sim_ns, Ordering::Relaxed);
    }

    /// Records one write costing `sim_ns` simulated nanoseconds.
    #[inline]
    pub fn record_write(&self, sim_ns: u64) {
        self.writes.fetch_add(1, Ordering::Relaxed);
        self.sim_write_ns.fetch_add(sim_ns, Ordering::Relaxed);
    }

    /// Returns a consistent-enough snapshot for reporting.
    pub fn snapshot(&self) -> IoStats {
        IoStats {
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            sim_read_ns: self.sim_read_ns.load(Ordering::Relaxed),
            sim_write_ns: self.sim_write_ns.load(Ordering::Relaxed),
        }
    }

    /// Zeroes all counters.
    pub fn reset(&self) {
        self.reads.store(0, Ordering::Relaxed);
        self.writes.store(0, Ordering::Relaxed);
        self.sim_read_ns.store(0, Ordering::Relaxed);
        self.sim_write_ns.store(0, Ordering::Relaxed);
    }
}

/// Snapshot of buffer-pool behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Page requests satisfied by an already-resident frame.
    pub hits: u64,
    /// Page requests that found no resident frame (`faults +
    /// fault_joins`: either they started a load or parked on one).
    pub misses: u64,
    /// Frames reclaimed to make room.
    pub evictions: u64,
    /// Dirty pages handed off for write-back: enqueued to the
    /// write-behind queue, or written synchronously (flush, queue-full
    /// fallback, or a pool with write-behind disabled).
    pub writebacks: u64,
    /// Page loads actually started (one per fault, however many
    /// requesters were waiting for it). Loads served from the
    /// write-behind store count here but never reach the disk.
    pub faults: u64,
    /// Requests that parked on another requester's in-flight load
    /// instead of issuing a duplicate read (co-waiter joins).
    pub fault_joins: u64,
    /// Dirty victims enqueued to the write-behind queue.
    pub wb_enqueued: u64,
    /// Write-behind queue entries flushed to disk in the background.
    pub wb_flushed: u64,
    /// Dirty evictions that fell back to a **synchronous** write under
    /// the shard map lock because the write-behind queue was full or a
    /// flush barrier was draining it. This is the documented regime
    /// where the stripe stalls for a device write again — a steadily
    /// climbing count means the queue depth (`DbConfig::write_behind`)
    /// is undersized for the eviction rate.
    pub wb_sync_fallbacks: u64,
    /// Current write-behind queue depth (a gauge, not a counter: it
    /// reflects pages evicted-but-unflushed at snapshot time and is
    /// untouched by `reset_stats`).
    pub wb_pending: u64,
    /// Faults served by decompressing a page from the compressed frame
    /// tier instead of reading the disk. These still count in `misses`
    /// and `faults` (the frame machinery ran); the hit here is avoiding
    /// the device. See [`PoolStats::effective_hit_rate`].
    pub compressed_hits: u64,
    /// Compressed entries pushed out of the tier to stay within
    /// `compressed_budget_bytes`.
    pub compressed_evictions: u64,
    /// Requesters that parked on an in-flight **decompress** fault
    /// (the subset of `fault_joins` whose load was served from the
    /// compressed tier).
    pub decompress_stalls: u64,
    /// Raw bytes of every page admitted to the compressed tier
    /// (numerator of the achieved compression ratio).
    pub compressed_ratio_num: u64,
    /// Stored (encoded) bytes of every page admitted to the compressed
    /// tier (denominator of the achieved compression ratio).
    pub compressed_ratio_den: u64,
    /// Pages currently held compressed (a gauge, like `wb_pending`).
    pub compressed_pages: u64,
    /// Bytes currently held compressed (a gauge, like `wb_pending`).
    pub compressed_bytes: u64,
    /// Speculative loads started by `BufferPool::prefetch` (pages a
    /// readahead batch pulled in ahead of any requester). Also counted
    /// in `faults`/`misses` — the frame machinery ran in full.
    pub prefetch_issued: u64,
    /// Prefetched pages a requester went on to touch: the speculation
    /// that paid off. Counted once per prefetched page, on its first
    /// demand access (or when a demand requester joined the speculative
    /// load mid-flight).
    pub prefetch_hits: u64,
    /// Prefetched pages evicted untouched: the speculation that missed.
    /// `prefetch_issued - prefetch_hits - prefetch_wasted` pages are
    /// still resident awaiting a verdict.
    pub prefetch_wasted: u64,
    /// Batched disk reads issued by the pool's batch-fault path (each
    /// one [`crate::disk::DiskManager::read_many`] call, however many
    /// pages it carried).
    pub read_batches: u64,
    /// Pages carried by those batched reads;
    /// `read_pages / read_batches` is the achieved read coalescing
    /// factor.
    pub read_pages: u64,
}

impl PoolStats {
    /// Hit rate in `[0, 1]`; 0 when no requests were made.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Fraction of requests that avoided the disk: raw frame hits plus
    /// faults served by decompressing a tier entry. With the compressed
    /// tier disabled this equals [`PoolStats::hit_rate`].
    pub fn effective_hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            (self.hits + self.compressed_hits) as f64 / total as f64
        }
    }

    /// Achieved compression ratio (raw bytes / stored bytes) over every
    /// page admitted to the compressed tier; 0 when none were.
    pub fn compression_ratio(&self) -> f64 {
        if self.compressed_ratio_den == 0 {
            0.0
        } else {
            self.compressed_ratio_num as f64 / self.compressed_ratio_den as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_snapshot() {
        let s = AtomicIoStats::new();
        s.record_read(100);
        s.record_read(50);
        s.record_write(7);
        let snap = s.snapshot();
        assert_eq!(snap.reads, 2);
        assert_eq!(snap.writes, 1);
        assert_eq!(snap.sim_read_ns, 150);
        assert_eq!(snap.sim_write_ns, 7);
        assert_eq!(snap.sim_total_ns(), 157);
    }

    #[test]
    fn reset_zeroes() {
        let s = AtomicIoStats::new();
        s.record_read(1);
        s.reset();
        assert_eq!(s.snapshot(), IoStats::default());
    }

    #[test]
    fn hit_rate_edges() {
        let z = PoolStats::default();
        assert_eq!(z.hit_rate(), 0.0);
        let p = PoolStats { hits: 3, misses: 1, ..Default::default() };
        assert!((p.hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn compression_helper_edges() {
        let z = PoolStats::default();
        assert_eq!(z.compression_ratio(), 0.0);
        assert_eq!(z.effective_hit_rate(), 0.0);
        let p = PoolStats {
            hits: 2,
            misses: 2,
            compressed_hits: 1,
            compressed_ratio_num: 4096,
            compressed_ratio_den: 1024,
            ..Default::default()
        };
        assert!((p.hit_rate() - 0.5).abs() < 1e-12);
        assert!((p.effective_hit_rate() - 0.75).abs() < 1e-12);
        assert!((p.compression_ratio() - 4.0).abs() < 1e-12);
    }
}
