//! Record identifiers: the physical address of a tuple.

use crate::page::PageId;
use std::fmt;

/// Physical address of a tuple: `(page, slot)`.
///
/// A `RecordId` packs into a `u64` as `page << 16 | slot`, which is the
/// representation stored inside B+Tree leaves and forwarding tables. The
/// paper's §4.2 "semantic ID" technique relies on exactly this property:
/// a tuple's physical address can stand in for — or be embedded inside —
/// its application-visible identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RecordId {
    /// Page holding the tuple.
    pub page: PageId,
    /// Slot within the page's slot directory.
    pub slot: u16,
}

impl RecordId {
    /// Creates a record id from parts.
    #[inline]
    pub fn new(page: PageId, slot: u16) -> Self {
        RecordId { page, slot }
    }

    /// Packs into a `u64` (`page << 16 | slot`).
    ///
    /// # Panics
    /// Panics if the page id needs more than 48 bits.
    #[inline]
    pub fn to_u64(self) -> u64 {
        assert!(self.page.0 < (1 << 48), "page id {} exceeds 48 bits", self.page.0);
        (self.page.0 << 16) | u64::from(self.slot)
    }

    /// Unpacks from the `u64` representation produced by [`RecordId::to_u64`].
    #[inline]
    pub fn from_u64(v: u64) -> Self {
        RecordId { page: PageId(v >> 16), slot: (v & 0xFFFF) as u16 }
    }
}

impl fmt::Display for RecordId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.page, self.slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_round_trip() {
        let rid = RecordId::new(PageId(123_456), 789);
        assert_eq!(RecordId::from_u64(rid.to_u64()), rid);
    }

    #[test]
    fn pack_is_order_preserving_within_page() {
        let a = RecordId::new(PageId(5), 1).to_u64();
        let b = RecordId::new(PageId(5), 2).to_u64();
        let c = RecordId::new(PageId(6), 0).to_u64();
        assert!(a < b && b < c);
    }

    #[test]
    fn display_formats() {
        assert_eq!(RecordId::new(PageId(3), 4).to_string(), "P3:4");
    }

    #[test]
    #[should_panic(expected = "exceeds 48 bits")]
    fn oversized_page_id_panics() {
        let _ = RecordId::new(PageId(1 << 50), 0).to_u64();
    }
}
