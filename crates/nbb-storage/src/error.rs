//! Error types for the storage layer.

use std::fmt;

/// Errors produced by the storage substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// The requested page does not exist on the backing store.
    PageNotFound(u64),
    /// A page-level operation did not have enough free space.
    PageFull {
        /// Bytes requested by the operation.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// A slot index was out of range or referred to a deleted tuple.
    InvalidSlot {
        /// Page that was addressed.
        page: u64,
        /// Slot within the page.
        slot: u16,
    },
    /// A tuple exceeded the maximum size storable in a page.
    TupleTooLarge {
        /// Size of the offending tuple.
        size: usize,
        /// Maximum size a page can hold.
        max: usize,
    },
    /// The buffer pool had no evictable frame (all pages pinned).
    BufferPoolExhausted,
    /// An index declaration does not fit the table's tuple geometry
    /// (field range out of bounds, empty field, or a cached field
    /// overlapping the key bytes it would duplicate).
    InvalidIndexSpec {
        /// Name of the offending index.
        index: String,
        /// Human-readable description of the violation.
        reason: String,
    },
    /// A batched write addressed the same key more than once. Multi-key
    /// writes are validated up front and rejected whole rather than
    /// silently applying last-writer-wins within the batch.
    DuplicateKeyInBatch {
        /// The offending key, hex-encoded for display.
        key: String,
    },
    /// The backing file could not be read or written.
    Io(String),
    /// Page contents failed a structural sanity check.
    Corrupt(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::PageNotFound(id) => write!(f, "page {id} not found"),
            StorageError::PageFull { needed, available } => {
                write!(f, "page full: needed {needed} bytes, {available} available")
            }
            StorageError::InvalidSlot { page, slot } => {
                write!(f, "invalid slot {slot} on page {page}")
            }
            StorageError::TupleTooLarge { size, max } => {
                write!(f, "tuple of {size} bytes exceeds page capacity {max}")
            }
            StorageError::BufferPoolExhausted => {
                write!(f, "buffer pool exhausted: every frame is pinned")
            }
            StorageError::InvalidIndexSpec { index, reason } => {
                write!(f, "invalid spec for index {index}: {reason}")
            }
            StorageError::DuplicateKeyInBatch { key } => {
                write!(f, "duplicate key 0x{key} in one write batch")
            }
            StorageError::Io(msg) => write!(f, "I/O error: {msg}"),
            StorageError::Corrupt(msg) => write!(f, "corrupt page: {msg}"),
        }
    }
}

impl StorageError {
    /// Builds a [`StorageError::DuplicateKeyInBatch`] from raw key bytes.
    pub fn duplicate_key(key: &[u8]) -> Self {
        use std::fmt::Write;
        let mut hex = String::with_capacity(key.len() * 2);
        for b in key {
            let _ = write!(hex, "{b:02x}");
        }
        StorageError::DuplicateKeyInBatch { key: hex }
    }
}

impl std::error::Error for StorageError {}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e.to_string())
    }
}

/// Convenience alias used across the storage crate.
pub type Result<T> = std::result::Result<T, StorageError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_human_readable() {
        let e = StorageError::PageFull { needed: 100, available: 10 };
        assert_eq!(e.to_string(), "page full: needed 100 bytes, 10 available");
        let e = StorageError::PageNotFound(7);
        assert_eq!(e.to_string(), "page 7 not found");
        let e = StorageError::InvalidSlot { page: 3, slot: 9 };
        assert_eq!(e.to_string(), "invalid slot 9 on page 3");
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::other("boom");
        let e: StorageError = io.into();
        assert!(matches!(e, StorageError::Io(_)));
        assert!(e.to_string().contains("boom"));
    }
}
