//! Buffer pool: fixed set of frames over a [`DiskManager`], split into
//! lock-striped shards with per-shard clock eviction, an
//! I/O-in-progress **frame state machine** on the fault path,
//! **write-behind** eviction, and an optional **compressed frame tier**
//! that holds cold victims at a fraction of their raw size.
//!
//! # Frame state machine (overlapped faults, compressed demotions)
//!
//! A shard's residency table maps each page to `Resident` or `Loading`;
//! the pool-global compressed tier adds a third place a page's bytes
//! can live. Together:
//!
//! ```text
//!            miss: reserve frame,            load finishes:
//!            release shard lock              publish + wake waiters
//!   absent ────────────────────▶ Loading ────────────────────▶ Resident
//!      ▲                            │  ▲                          │
//!      │       load fails:          │  │ decompress fault:        │ evicted:
//!      │       free frame,          │  │ tier entry claimed,      │ demotion
//!      │       poison waiters       │  │ no disk read             │ enqueued
//!      │◀───────────────────────────┘  │                          ▼
//!      │                               └───────────────────── Compressed
//!      │◀─────────────────────────────────────────────────────────┘
//!                    budget eviction, or claimed by a fault
//! ```
//!
//! The shard map mutex is held only to *transition* between states,
//! never across a [`DiskManager::read`]. A miss installs a `Loading`
//! entry, reserves its frame (pinned, so the clock skips it), drops the
//! shard lock, performs the load, then re-locks to publish. The
//! consequences, which the concurrency benches measure:
//!
//! * Requesters for **other** pages in the same shard proceed
//!   immediately — one stripe sustains frames-many in-flight faults
//!   instead of one.
//! * Concurrent requesters for the **same** page park on the in-flight
//!   load (a condvar on the `Loading` entry) instead of issuing
//!   duplicate reads; the loader pre-grants each parked waiter its pin
//!   when it publishes, so a waiter can never find the page evicted
//!   between wake-up and use. Exactly one disk read happens no matter
//!   how many threads miss together ([`PoolStats::fault_joins`] counts
//!   the coalesced ones).
//! * A failed read poisons only its own `Loading` entry: the frame goes
//!   back to the free list unpinned, every parked waiter gets the
//!   error, and a later retry faults afresh. No zombie frames.
//!
//! ## Batch faults (`fault_many` / `prefetch`)
//!
//! The batched read path runs the same state machine for N pages at
//! once: misses are grouped per shard, and each shard group reserves
//! its frames and installs all its `Loading` entries under **one** map
//! acquisition, drops the lock, then issues **one**
//! [`DiskManager::read_many`] for every page the write-behind store and
//! compressed tier couldn't serve — so a cold scan pays one device
//! round-trip per batch instead of one per page
//! ([`PoolStats::read_batches`] / [`PoolStats::read_pages`] meter the
//! coalescing). Every per-page guarantee above is preserved:
//! concurrent requesters join the individual `InFlight`s exactly as
//! they would a point fault, and a failed page poisons only its own
//! entry (a batch-level read error falls back to per-page reads so
//! siblings still publish). Speculative batches (`prefetch`) publish
//! their frames *unpinned, unreferenced, and flagged*: a frame nobody
//! touched yet is the clock's first-choice victim, so readahead can
//! never evict the working set — it only ever spends frames that were
//! idle ([`PoolStats::prefetch_issued`]/`prefetch_hits`/
//! `prefetch_wasted` meter the speculation).
//!
//! # Write-behind eviction
//!
//! Evicting a dirty victim no longer pays a synchronous
//! [`DiskManager::write`]: the victim's bytes are memcpy'd into a
//! bounded write-behind queue and a background flusher thread writes
//! them out, so victim reclaim costs a page copy instead of a device
//! wait. Correctness hinges on the queue being part of the storage
//! hierarchy: a fault checks the queue before the disk (queued bytes
//! are newer), and a page re-faulted from the queue re-enters memory
//! *dirty* with its pending write cancelled, so the frame is always the
//! single authority for unflushed bytes. [`BufferPool::flush_all`]
//! drains the queue before flushing resident pages — the durability
//! barrier `Database::persist`/`close` rely on — and dropping the pool
//! drains it too. A full queue falls back to the old synchronous write,
//! so memory stays bounded. `write_behind = 0` disables the queue and
//! the flusher thread entirely.
//!
//! # Compressed frame tier
//!
//! With a nonzero `compressed_budget_bytes`, eviction stops discarding
//! cold-but-warm pages outright: after the victim's dirty bytes are
//! safe (write-behind copy or synchronous write — durability ordering
//! is untouched), the victim is **demoted**: its bytes are queued for a
//! background compressor thread, which encodes them with
//! [`nbb_encoding::pagecodec`] (frame-of-reference + bitpack with a
//! raw fallback when the ratio is poor) and admits the result to a
//! budget-bounded store. The same frame budget then effectively caches
//! budget ÷ ratio more pages. Three properties keep it off every hot
//! path:
//!
//! * **Reclaim never stalls.** Demotion is a page memcpy into a bounded
//!   queue; if the queue is full the page is simply evicted the old
//!   way. Compression itself runs on the `nbb-compressor` thread.
//! * **A decompress fault is a cheap load.** The fault path checks
//!   write-behind (newer bytes win), then the compressed tier, then the
//!   disk. A tier hit rides the *same* `Loading` state machine —
//!   co-waiters park and get pre-granted pins, a failed decompress
//!   poisons only its own waiters — but the "I/O" is an in-memory
//!   decode ([`PoolStats::compressed_hits`] /
//!   [`PoolStats::decompress_stalls`] meter it).
//! * **Entries are always redundant.** A page is only demoted after its
//!   bytes are clean (on disk or in the write-behind queue), and any
//!   load publishing the page invalidates its tier entry and any
//!   pending demotion job. A corrupt or evicted entry therefore costs a
//!   disk read, never data. Budget overruns evict the oldest entries
//!   ([`PoolStats::compressed_evictions`]).
//!
//! `compressed_budget_bytes = 0` (the default everywhere) disables the
//! tier, the compressor thread, and every new code path — eviction
//! behaves bit-for-bit as before.
//!
//! # Index-cache contract
//!
//! Two properties are load-bearing for the paper's index cache (§2.1.1):
//!
//! 1. **Non-dirtying writes.** [`BufferPool::with_page_cache_write`]
//!    mutates the in-memory frame *without* setting the dirty bit. If the
//!    frame is evicted, the modification is silently lost — which is
//!    exactly the contract index-cache stores require ("cache
//!    modifications do not dirty the page", so caching never adds I/O).
//! 2. **Try-latch access.** The same method gives up immediately if the
//!    frame latch is contended (§2.1.3: "we can give up a write operation
//!    if the latch is not immediately available").
//!
//! # Sharding
//!
//! The pool is partitioned into `shards` independent stripes, each with
//! its own frame table, free list, clock hand, and statistics. A page id
//! maps to exactly one shard (`page_id % shards`), so concurrent
//! accesses to distinct pages contend only when they collide on a
//! stripe. Frames are divided as evenly as possible across shards, and a
//! shard can only evict among its own frames. [`BufferPool::new`]
//! therefore caps the default shard count so each shard keeps at least
//! [`MIN_FRAMES_PER_SHARD`] frames; [`BufferPool::new_sharded`] and
//! [`BufferPool::with_options`] give callers exact control.
//!
//! # Lock order
//!
//! The pool's locks sit at ranks 60–90 of the workspace lock-order
//! lattice (`CONCURRENCY.md` at the repo root), checked at runtime on
//! every debug test run. The pool is also the lattice's one deliberate
//! exception: nested `with_page` acquires frame → map while the
//! fault/evict paths acquire map → frame, so the entry-point map
//! acquisitions are `lock_unordered` with deadlock-freedom resting on
//! the pin protocol — blocking frame latches taken under a map only
//! ever target unpinned victims, and closure-held frames are pinned.
//! `CONCURRENCY.md` §"The frame/map exemption" carries the full
//! argument. (`flush_all`'s sweep, once the one map-holder that
//! latched pinned frames, now snapshots residency under the map and
//! latches after dropping it.)

use crate::disk::DiskManager;
use crate::error::{Result, StorageError};
use crate::lockrank;
use crate::page::{Page, PageId};
use crate::stats::PoolStats;
use nbb_encoding::pagecodec;
use parking_lot::{Condvar, Mutex, RwLock};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Default shard count for pools large enough to support it.
pub const DEFAULT_POOL_SHARDS: usize = 8;

/// Minimum frames per shard before [`BufferPool::new`] reduces the
/// default shard count. Keeps clock eviction meaningful (a one-frame
/// shard degenerates to direct replacement) and leaves headroom for
/// nested pins of pages that happen to collide on a shard.
pub const MIN_FRAMES_PER_SHARD: usize = 16;

/// Default write-behind queue depth (evicted-but-unflushed pages the
/// pool will buffer before eviction falls back to synchronous writes).
pub const DEFAULT_WRITE_BEHIND: usize = 64;

/// Queue slots the background flusher claims per drain pass; the batch
/// rides one [`DiskManager::write_many`] call, so disks with a bulk
/// path pay one round-trip for up to this many pages.
const WB_DRAIN_BATCH: usize = 16;

/// Demotions the compressed tier will queue ahead of its compressor
/// thread. A full queue turns further demotions into plain evictions
/// (the tier trades hit rate, never reclaim latency).
const CT_QUEUE_DEPTH: usize = 64;

struct Frame {
    data: RwLock<Page>,
    pin: AtomicU32,
    dirty: AtomicBool,
    refbit: AtomicBool,
    /// Published by a speculative [`BufferPool::prefetch`] and not yet
    /// touched by any requester. Such frames are the clock's
    /// first-choice victims; the flag is cleared (under the shard map
    /// lock) on the first demand access, which is also when
    /// `prefetch_hits` counts the speculation as paid off.
    prefetched: AtomicBool,
}

/// One page's state of an in-flight load, parked on by co-waiters.
struct InFlight {
    state: Mutex<LoadState>,
    cv: Condvar,
    /// Waiters that joined this load and were promised a pin. Only
    /// mutated under the shard map lock; final once the `Loading` entry
    /// leaves the table, which is when the loader reads it.
    joiners: AtomicU32,
}

impl InFlight {
    fn new() -> Self {
        InFlight {
            state: Mutex::with_rank(lockrank::POOL_INFLIGHT, LoadState::Pending),
            cv: Condvar::new(),
            joiners: AtomicU32::new(0),
        }
    }

    /// Parks until the load resolves; returns the published frame (pin
    /// already granted by the loader) or the load's error.
    fn wait(&self) -> Result<Arc<Frame>> {
        let mut st = self.state.lock();
        loop {
            match &*st {
                LoadState::Pending => self.cv.wait(&mut st),
                LoadState::Ready(frame) => return Ok(Arc::clone(frame)),
                LoadState::Failed(e) => return Err(e.clone()),
            }
        }
    }

    /// Resolves the load and wakes every parked waiter.
    fn resolve(&self, outcome: std::result::Result<Arc<Frame>, StorageError>) {
        let mut st = self.state.lock();
        *st = match outcome {
            Ok(frame) => LoadState::Ready(frame),
            Err(e) => LoadState::Failed(e),
        };
        self.cv.notify_all();
    }

    /// Waits until the load resolves, without claiming a pin or caring
    /// about the outcome. `flush_all` uses this to chase loads that
    /// were in flight when its sweep passed.
    fn await_resolved(&self) {
        let mut st = self.state.lock();
        while matches!(*st, LoadState::Pending) {
            self.cv.wait(&mut st);
        }
    }
}

/// Unwind insurance for the loader: a `DiskManager` implementation that
/// panics mid-`read` must not strand the `Loading` entry and its
/// reserved (pinned, clock-invisible) frame — that would hang every
/// future requester of the page forever. While armed, dropping this
/// guard frees the frame and poisons the waiters exactly like a failed
/// read; the loader disarms it once the load returns normally.
struct LoadAbortGuard<'a> {
    shard: &'a Shard,
    id: PageId,
    idx: usize,
    inflight: &'a Arc<InFlight>,
    armed: bool,
}

impl Drop for LoadAbortGuard<'_> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let frame = &self.shard.frames[self.idx];
        // rank-exempt: unwinds out of a (possibly nested) fault, so the
        // caller may still hold outer frame latches; see `pin`.
        let mut map = self.shard.map.lock_unordered();
        frame.dirty.store(false, Ordering::Release);
        frame.pin.store(0, Ordering::Release);
        map.table.remove(&self.id);
        map.free.push(self.idx);
        drop(map);
        self.inflight.resolve(Err(StorageError::Io(format!(
            "page {} load panicked in DiskManager::read",
            self.id
        ))));
    }
}

/// Batch-fault twin of [`LoadAbortGuard`]: unwind insurance covering
/// every `Loading` entry a batch reserved. Entries are cleared once the
/// batch publishes; if a `DiskManager` panics mid-`read_many`, dropping
/// this guard frees every still-reserved frame and poisons its waiters
/// exactly like the per-page guard would.
struct BatchAbortGuard<'a> {
    shards: &'a [Shard],
    /// `(page, shard index, frame index, its Loading entry)`, grouped
    /// contiguously by shard in ascending order (reservation order).
    entries: Vec<(PageId, usize, usize, Arc<InFlight>)>,
}

impl Drop for BatchAbortGuard<'_> {
    fn drop(&mut self) {
        if self.entries.is_empty() {
            return;
        }
        let mut k = 0;
        while k < self.entries.len() {
            let si = self.entries[k].1;
            let shard = &self.shards[si];
            // rank-exempt: unwinds out of a (possibly nested) batch
            // fault, so the caller may still hold outer frame latches;
            // see `LoadAbortGuard`. One shard map at a time, ascending.
            let mut map = shard.map.lock_unordered();
            while k < self.entries.len() && self.entries[k].1 == si {
                let (id, _, idx, _) = &self.entries[k];
                let frame = &shard.frames[*idx];
                frame.dirty.store(false, Ordering::Release);
                frame.pin.store(0, Ordering::Release);
                frame.prefetched.store(false, Ordering::Relaxed);
                map.table.remove(id);
                map.free.push(*idx);
                k += 1;
            }
        }
        for (id, _, _, inflight) in &self.entries {
            inflight.resolve(Err(StorageError::Io(format!(
                "page {id} load panicked in DiskManager::read_many"
            ))));
        }
    }
}

/// Per-position outcome of one `BufferPool::fault_batch` call.
enum BatchSlot {
    /// Demand-faulted (or joined mid-flight) and pinned for the caller;
    /// the caller owes one `unpin`.
    Pinned(Arc<Frame>),
    /// This page's load failed. Sibling pages in the batch are
    /// unaffected — each slot carries its own verdict.
    Failed(StorageError),
    /// Nothing was done for this page: the shard had no victim to
    /// reserve (demand callers fall back to the serial point path,
    /// which surfaces `BufferPoolExhausted` properly), or the page was
    /// already resident/loading in a speculative batch.
    Skipped,
}

/// A published batch entry's `InFlight` and its outcome, resolved after
/// the shard map drops.
type Resolution = (Arc<InFlight>, std::result::Result<Arc<Frame>, StorageError>);

enum LoadState {
    Pending,
    Ready(Arc<Frame>),
    Failed(StorageError),
}

/// Residency of one page within its shard.
enum Residency {
    /// Loaded into the local frame at this index.
    Resident(usize),
    /// A load is in flight; requesters park here instead of re-reading.
    Loading(Arc<InFlight>),
}

/// Mutable residency state of one shard, behind the shard's mutex.
struct ShardMap {
    /// page id -> residency state
    table: HashMap<PageId, Residency>,
    /// local frame index -> published page (None = free or loading)
    resident: Vec<Option<PageId>>,
    /// Stack of free local frame indexes (avoids O(n) scans on miss).
    free: Vec<usize>,
    clock_hand: usize,
}

/// Per-shard counters. Relaxed atomics on their own cache line so the
/// hot path never contends with stats collection or a neighbor shard.
#[repr(align(64))]
#[derive(Default)]
struct ShardStats {
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    writebacks: AtomicU64,
    faults: AtomicU64,
    fault_joins: AtomicU64,
    prefetch_issued: AtomicU64,
    prefetch_hits: AtomicU64,
    prefetch_wasted: AtomicU64,
    read_batches: AtomicU64,
    read_pages: AtomicU64,
}

struct Shard {
    frames: Vec<Arc<Frame>>,
    map: Mutex<ShardMap>,
    stats: ShardStats,
}

// ---------------------------------------------------------------------
// Write-behind
// ---------------------------------------------------------------------

/// One evicted-but-unflushed page in the write-behind store.
struct WbSlot {
    /// The most recently evicted bytes for this page (authoritative
    /// until flushed or until the page is re-faulted into a frame).
    page: Page,
    /// Bumped on every supersede, so a completing write can tell
    /// whether it flushed the latest bytes.
    gen: u64,
    /// `Some(gen)` while a consumer is writing that generation to disk.
    flushing: Option<u64>,
    /// A write of these bytes failed; kept out of the flusher's rotation
    /// (retried by `flush_all`, a supersede, or the drop drain).
    failed: bool,
}

struct WbState {
    slots: HashMap<PageId, WbSlot>,
    /// Flush order; may hold stale ids (slots cancelled or already
    /// being flushed) which consumers simply skip.
    order: VecDeque<PageId>,
    /// Active `flush_all` barriers. While nonzero, evictions of pages
    /// with no existing slot write synchronously instead of enqueuing —
    /// a new slot created after the barrier's drain would silently
    /// survive the "everything is durable now" promise. Pages that
    /// *have* a slot still supersede in place (per-page ordering goes
    /// through the slot machinery, and the drain loop runs until the
    /// queue is empty).
    barriers: u32,
    shutdown: bool,
}

/// Bounded queue of dirty evictees plus the flusher protocol shared by
/// the background thread, `flush_all`, and drop.
struct WriteBehind {
    disk: Arc<dyn DiskManager>,
    state: Mutex<WbState>,
    /// Signals the flusher thread that work (or shutdown) arrived.
    work_cv: Condvar,
    /// Signals drainers that an in-flight write completed.
    done_cv: Condvar,
    capacity: usize,
    enqueued: AtomicU64,
    flushed: AtomicU64,
    /// Dirty evictions that bypassed the queue for a synchronous write
    /// (queue full or barrier active); see
    /// [`crate::stats::PoolStats::wb_sync_fallbacks`].
    sync_fallbacks: AtomicU64,
}

/// A claimed flush job: these bytes of this generation, written outside
/// the lock.
type WbJob = (PageId, Page, u64);

impl WriteBehind {
    fn new(disk: Arc<dyn DiskManager>, capacity: usize) -> Self {
        WriteBehind {
            disk,
            state: Mutex::with_rank(
                lockrank::POOL_WRITE_BEHIND,
                WbState {
                    slots: HashMap::new(),
                    order: VecDeque::new(),
                    barriers: 0,
                    shutdown: false,
                },
            ),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            capacity,
            enqueued: AtomicU64::new(0),
            flushed: AtomicU64::new(0),
            sync_fallbacks: AtomicU64::new(0),
        }
    }

    /// Hands a dirty victim's bytes to the queue. Falls back to a
    /// synchronous write when the queue is full or a flush barrier is
    /// active (either way only possible for a page with no existing
    /// slot, so write ordering stays per-page serial). Called with the
    /// victim's shard map lock held.
    fn enqueue(&self, pid: PageId, page: &Page) -> Result<()> {
        // Copy the page before taking the wb mutex: every shard's
        // evictions funnel through this one lock, and a page-sized
        // memcpy under it would re-couple the evictions the shard
        // striping decoupled. Under the lock only pointers move.
        let copy = page.clone();
        let mut st = self.state.lock();
        if let Some(slot) = st.slots.get_mut(&pid) {
            // Supersede: newest bytes win, no extra capacity.
            slot.page = copy;
            slot.gen += 1;
            if slot.flushing.is_none() && slot.failed {
                // Was parked as failed (not in rotation): requeue.
                slot.failed = false;
                st.order.push_back(pid);
            }
        } else if st.barriers == 0 && st.slots.len() < self.capacity {
            st.slots.insert(pid, WbSlot { page: copy, gen: 0, flushing: None, failed: false });
            st.order.push_back(pid);
        } else {
            // Queue full (or a flush barrier is draining it) and no
            // slot to supersede: the old synchronous path. Safe
            // precisely because no slot exists for `pid` — nothing can
            // write staler bytes after us. This runs under the victim
            // shard's map lock (pre-write-behind cost, and deliberate:
            // released earlier, a concurrent fault of the victim would
            // read stale disk bytes, and parking them in a fresh slot
            // instead would let them slip past an active barrier's
            // drain). It stalls the stripe only on this rare fallback,
            // and `wb_sync_fallbacks` counts each occurrence so the
            // regime is observable (bumped before the blocking write,
            // so a monitor sees the stall as it happens).
            self.sync_fallbacks.fetch_add(1, Ordering::Relaxed);
            drop(st);
            return self.disk.write(pid, page);
        }
        self.enqueued.fetch_add(1, Ordering::Relaxed);
        self.work_cv.notify_one();
        Ok(())
    }

    /// Enters a flush barrier: until the matching
    /// [`WriteBehind::end_barrier`], no *new* slots are created (see
    /// [`WbState::barriers`]), so a concurrent dirty eviction cannot
    /// slip an unflushed page past `flush_all`'s drain.
    fn begin_barrier(&self) {
        self.state.lock().barriers += 1;
    }

    /// Leaves a flush barrier.
    fn end_barrier(&self) {
        self.state.lock().barriers -= 1;
    }

    /// Serves a fault from the store: copies the queued (newer-than-disk)
    /// bytes into `dst` and cancels the pending write when possible —
    /// the re-loaded frame re-enters memory dirty and becomes the single
    /// authority for these bytes. Returns false when the page has no
    /// queued bytes (fault must read the disk).
    fn serve_fault(&self, pid: PageId, dst: &mut Page) -> bool {
        let mut st = self.state.lock();
        let Some(slot) = st.slots.get(&pid) else { return false };
        dst.bytes_mut().copy_from_slice(slot.page.bytes());
        if slot.flushing.is_none() {
            // Not mid-write: cancel outright (stale `order` entries are
            // skipped by consumers). If a write is in flight, completion
            // will retire the slot; the frame's dirty bit keeps the
            // bytes safe either way.
            st.slots.remove(&pid);
        }
        true
    }

    /// Claims the next flushable job, marking its slot in-flight. The
    /// clone under the lock is deliberate: the slot must keep its bytes
    /// visible for [`WriteBehind::serve_fault`] while the writer needs
    /// a copy a concurrent supersede cannot swap out from under it —
    /// and unlike `enqueue`, only flusher-side consumers pay it.
    fn pop_job(st: &mut WbState) -> Option<WbJob> {
        while let Some(pid) = st.order.pop_front() {
            if let Some(slot) = st.slots.get_mut(&pid) {
                if slot.flushing.is_none() && !slot.failed {
                    slot.flushing = Some(slot.gen);
                    return Some((pid, slot.page.clone(), slot.gen));
                }
            }
        }
        None
    }

    /// Claims up to `max` flushable jobs in queue order (each slot
    /// marked in-flight, so page ids within the batch are distinct and
    /// no other consumer can double-write them). The background flusher
    /// drains through this so one [`DiskManager::write_many`] call
    /// amortizes device round-trips across the whole claim.
    fn pop_jobs(st: &mut WbState, max: usize) -> Vec<WbJob> {
        let mut jobs = Vec::new();
        while jobs.len() < max {
            match Self::pop_job(st) {
                Some(job) => jobs.push(job),
                None => break,
            }
        }
        jobs
    }

    /// Writes a claimed job with unwind insurance: a `DiskManager`
    /// implementation that panics mid-`write` must not leave the slot
    /// marked `flushing` forever — `drain` waits on exactly that marker
    /// and would hang every future `flush_all`. On unwind the slot is
    /// parked as failed (bytes kept) and drainers are woken; the next
    /// `flush_all` retries it and surfaces whatever happens then.
    fn write_job(&self, pid: PageId, page: &Page) -> Result<()> {
        struct Unwedge<'a> {
            wb: &'a WriteBehind,
            pid: PageId,
            armed: bool,
        }
        impl Drop for Unwedge<'_> {
            fn drop(&mut self) {
                if !self.armed {
                    return;
                }
                let mut st = self.wb.state.lock();
                if let Some(slot) = st.slots.get_mut(&self.pid) {
                    slot.flushing = None;
                    slot.failed = true;
                }
                drop(st);
                self.wb.done_cv.notify_all();
            }
        }
        let mut guard = Unwedge { wb: self, pid, armed: true };
        let res = self.disk.write(pid, page);
        guard.armed = false;
        res
    }

    /// Writes a claimed batch through [`DiskManager::write_many`], with
    /// the same unwind insurance as [`WriteBehind::write_job`] extended
    /// to every slot in the batch: a panicking disk parks each claimed
    /// slot as failed (bytes kept) and wakes drainers, so no
    /// `flushing` marker is ever stranded. On a batch-level error the
    /// caller fails every job the same way — the disk makes no claim
    /// about which pages landed, and re-flushing a page that did land
    /// is idempotent (`complete` with the slot's claimed gen retries or
    /// retires each correctly).
    fn write_jobs(&self, jobs: &[WbJob]) -> Result<()> {
        struct Unwedge<'a> {
            wb: &'a WriteBehind,
            jobs: &'a [WbJob],
            armed: bool,
        }
        impl Drop for Unwedge<'_> {
            fn drop(&mut self) {
                if !self.armed {
                    return;
                }
                let mut st = self.wb.state.lock();
                for (pid, _, _) in self.jobs {
                    if let Some(slot) = st.slots.get_mut(pid) {
                        slot.flushing = None;
                        slot.failed = true;
                    }
                }
                drop(st);
                self.wb.done_cv.notify_all();
            }
        }
        let mut guard = Unwedge { wb: self, jobs, armed: true };
        let pages: Vec<(PageId, &Page)> = jobs.iter().map(|(pid, page, _)| (*pid, page)).collect();
        let res = self.disk.write_many(&pages);
        guard.armed = false;
        res
    }

    /// Retires a completed write. A slot superseded mid-write rejoins
    /// the rotation; a failed write parks the slot (bytes kept) for
    /// `flush_all`, a supersede, or the drop drain to retry.
    fn complete(&self, st: &mut WbState, pid: PageId, gen: u64, res: Result<()>) {
        if res.is_ok() {
            self.flushed.fetch_add(1, Ordering::Relaxed);
        }
        if let Some(slot) = st.slots.get_mut(&pid) {
            slot.flushing = None;
            if slot.gen == gen {
                match res {
                    Ok(()) => {
                        st.slots.remove(&pid);
                    }
                    Err(_) => {
                        slot.failed = true;
                    }
                }
            } else {
                // Superseded while we wrote: newer bytes need a pass
                // (even if our stale write failed).
                st.order.push_back(pid);
                self.work_cv.notify_one();
            }
        }
        // else: cancelled by a re-fault; the frame owns the bytes now.
        self.done_cv.notify_all();
    }

    /// The background flusher: drains claimed jobs in batches of up to
    /// [`WB_DRAIN_BATCH`] through [`DiskManager::write_many`] (one
    /// device round-trip per batch on disks that override it), parks
    /// when idle, exits once shutdown is signalled *and* the rotation
    /// is empty. A panicking `DiskManager` write is caught so the
    /// thread survives — dying here would silently disable write-behind
    /// for the pool's remaining lifetime (`write_jobs`'s guard has
    /// already parked every claimed slot as failed by the time the
    /// catch sees the unwind, so there is no completion left to run).
    fn run(wb: Arc<WriteBehind>) {
        let mut st = wb.state.lock();
        loop {
            let jobs = Self::pop_jobs(&mut st, WB_DRAIN_BATCH);
            if !jobs.is_empty() {
                drop(st);
                let res =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| wb.write_jobs(&jobs)));
                st = wb.state.lock();
                if let Ok(res) = res {
                    // One verdict for the whole batch: on error every
                    // job parks as failed (the disk makes no per-page
                    // claim); on success each slot retires or rejoins
                    // per its own generation.
                    for (pid, _, gen) in &jobs {
                        wb.complete(&mut st, *pid, *gen, res.clone());
                    }
                }
                continue;
            }
            if st.shutdown {
                return;
            }
            wb.work_cv.wait(&mut st);
        }
    }

    /// Drains the queue to disk, helping the flusher rather than merely
    /// waiting on it. Parked-as-failed slots get one synchronous retry;
    /// the first persistent failure aborts with its error (bytes stay
    /// queued, so a later drain can succeed).
    fn drain(&self) -> Result<()> {
        let mut st = self.state.lock();
        loop {
            if let Some((pid, page, gen)) = Self::pop_job(&mut st) {
                drop(st);
                let res = self.write_job(pid, &page);
                st = self.state.lock();
                self.complete(&mut st, pid, gen, res);
                continue;
            }
            if st.slots.values().any(|s| s.flushing.is_some()) {
                self.done_cv.wait(&mut st);
                continue;
            }
            // Only parked failures remain. Retry them here so flush_all
            // keeps the old contract: error out but lose nothing.
            let Some(pid) = st.slots.keys().next().copied() else { return Ok(()) };
            // nbb-lint: allow(unwrap, key taken from the map one line up, lock still held)
            let slot = st.slots.get_mut(&pid).expect("key just observed");
            let (page, gen) = (slot.page.clone(), slot.gen);
            slot.flushing = Some(gen);
            slot.failed = false;
            drop(st);
            let res = self.write_job(pid, &page);
            st = self.state.lock();
            let err = res.as_ref().err().cloned();
            self.complete(&mut st, pid, gen, res);
            if let Some(e) = err {
                return Err(e);
            }
        }
    }

    /// Queue depth right now.
    fn pending(&self) -> u64 {
        self.state.lock().slots.len() as u64
    }
}

// ---------------------------------------------------------------------
// Compressed frame tier
// ---------------------------------------------------------------------

/// A pending demotion: these bytes of this page, claimed by the
/// compressor under this job token.
type CtJob = (PageId, Page, u64);

/// Mutable state of the compressed tier, behind its mutex.
struct CtState {
    /// Admitted entries: page id → encoded bytes.
    entries: HashMap<PageId, Vec<u8>>,
    /// Admission order; budget eviction pops the oldest. May hold stale
    /// ids (entries since claimed or invalidated), which are skipped.
    order: VecDeque<PageId>,
    /// Stored bytes across `entries` (the budget meters encoded size).
    bytes: usize,
    /// Live demotion jobs: page id → token. A token survives from
    /// enqueue until the compressor finishes; a load publishing the
    /// page removes it, which cancels the job's admission (the frame's
    /// bytes are newer than the snapshot the job carries).
    jobs: HashMap<PageId, u64>,
    /// Demotions awaiting the compressor, oldest first.
    queue: VecDeque<CtJob>,
    next_token: u64,
    /// Jobs popped from `queue` and being encoded right now.
    inflight: usize,
    shutdown: bool,
    /// Test hook: while held, the compressor parks and decompress
    /// serves block (see [`BufferPool::set_compression_gate`]).
    gate_held: bool,
}

/// Bounded store of compressed cold pages plus the background
/// compressor protocol. Lock order: shard map lock → tier lock (same
/// rank as the write-behind lock; the two are never nested).
struct CompressedTier {
    state: Mutex<CtState>,
    /// Signals the compressor that work, shutdown, or a gate release
    /// arrived (decompress serves waiting out the gate park here too).
    work_cv: Condvar,
    /// Signals drainers that a job completed.
    done_cv: Condvar,
    /// Stored-bytes bound for `entries`. Atomic so the tuner can resize
    /// it at runtime ([`CompressedTier::set_budget`]); `admit` reads it
    /// once per admission.
    budget: AtomicUsize,
    hits: AtomicU64,
    evictions: AtomicU64,
    stalls: AtomicU64,
    ratio_num: AtomicU64,
    ratio_den: AtomicU64,
}

impl CompressedTier {
    fn new(budget: usize) -> Self {
        CompressedTier {
            state: Mutex::with_rank(
                lockrank::POOL_COMPRESSED_TIER,
                CtState {
                    entries: HashMap::new(),
                    order: VecDeque::new(),
                    bytes: 0,
                    jobs: HashMap::new(),
                    queue: VecDeque::new(),
                    next_token: 0,
                    inflight: 0,
                    shutdown: false,
                    gate_held: false,
                },
            ),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            budget: AtomicUsize::new(budget),
            hits: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            stalls: AtomicU64::new(0),
            ratio_num: AtomicU64::new(0),
            ratio_den: AtomicU64::new(0),
        }
    }

    /// Hands an evicted (already clean) page to the compressor. Never
    /// blocks: a full queue means the demotion is simply skipped and
    /// the eviction proceeds as if the tier did not exist. Called with
    /// the victim's shard map lock held; `page` is cloned by the caller
    /// before this lock for the same reason `WriteBehind::enqueue`
    /// clones early.
    fn enqueue_demotion(&self, pid: PageId, page: Page) {
        let mut st = self.state.lock();
        if st.shutdown || st.queue.len() >= CT_QUEUE_DEPTH {
            return;
        }
        // A page is demoted only while resident, and becoming resident
        // invalidated any older entry or job for it (see
        // `invalidate`), so this insert never collides.
        debug_assert!(!st.jobs.contains_key(&pid) && !st.entries.contains_key(&pid));
        let token = st.next_token;
        st.next_token += 1;
        st.jobs.insert(pid, token);
        st.queue.push_back((pid, page, token));
        self.work_cv.notify_one();
    }

    /// Claims the stored bytes for `pid`, removing the entry — the
    /// caller is about to publish the page resident, which supersedes
    /// it. Returns `None` when the tier holds nothing for the page.
    /// Blocks while the test gate is held (the caller sits in its
    /// `Loading` entry, so co-requesters park rather than spin).
    fn claim(&self, pid: PageId) -> Option<Vec<u8>> {
        let mut st = self.state.lock();
        // The gate only blocks serves the tier would actually answer;
        // a fault for a page the tier does not hold proceeds to the
        // disk unhindered even while the gate is held.
        while st.gate_held && st.entries.contains_key(&pid) {
            self.work_cv.wait(&mut st);
        }
        let enc = st.entries.remove(&pid)?;
        st.bytes -= enc.len();
        Some(enc)
    }

    /// Drops any stored entry and cancels any pending demotion job for
    /// `pid`. Every load calls this at publish time: the resident frame
    /// is now the authority, and a job queued before the page's last
    /// absence would admit stale bytes.
    fn invalidate(&self, pid: PageId) {
        let mut st = self.state.lock();
        if let Some(enc) = st.entries.remove(&pid) {
            st.bytes -= enc.len();
        }
        st.jobs.remove(&pid);
    }

    /// Admits a finished encoding, evicting oldest entries until it
    /// fits the budget. Called by the compressor with the state lock
    /// held and the job's token already validated and retired.
    fn admit(&self, st: &mut CtState, pid: PageId, raw_len: usize, enc: Vec<u8>) {
        let budget = self.budget.load(Ordering::Relaxed);
        if enc.len() > budget {
            return;
        }
        while st.bytes + enc.len() > budget {
            let Some(old) = st.order.pop_front() else { break };
            if let Some(gone) = st.entries.remove(&old) {
                st.bytes -= gone.len();
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.ratio_num.fetch_add(raw_len as u64, Ordering::Relaxed);
        self.ratio_den.fetch_add(enc.len() as u64, Ordering::Relaxed);
        st.bytes += enc.len();
        st.entries.insert(pid, enc);
        st.order.push_back(pid);
    }

    /// The compressor thread: pops demotions, encodes them off-lock,
    /// and admits results whose job token is still live. Parks when
    /// idle or while the test gate is held; exits on shutdown.
    fn run(ct: Arc<CompressedTier>) {
        let mut st = ct.state.lock();
        loop {
            if st.gate_held && !st.shutdown {
                ct.work_cv.wait(&mut st);
                continue;
            }
            if let Some((pid, page, token)) = st.queue.pop_front() {
                st.inflight += 1;
                drop(st);
                let enc = pagecodec::compress(page.bytes());
                st = ct.state.lock();
                if st.jobs.get(&pid) == Some(&token) {
                    st.jobs.remove(&pid);
                    ct.admit(&mut st, pid, page.bytes().len(), enc);
                }
                st.inflight -= 1;
                ct.done_cv.notify_all();
                continue;
            }
            if st.shutdown {
                return;
            }
            ct.work_cv.wait(&mut st);
        }
    }

    /// Waits until every queued and in-flight demotion has been
    /// processed. `flush_all` runs this so a barrier leaves no
    /// compression limbo behind (deterministic for tests; the entries
    /// themselves are cache, not durability state). Waits forever if
    /// the test gate is held — release the gate first.
    fn drain(&self) {
        let mut st = self.state.lock();
        while !st.queue.is_empty() || st.inflight > 0 {
            self.done_cv.wait(&mut st);
        }
    }

    /// Resizes the stored-bytes budget at runtime (the tuner's resize
    /// hook). Shrinking evicts oldest entries until the store fits;
    /// growing takes effect at the next admission. Entries are cache,
    /// never durability state, so eviction here is always safe.
    fn set_budget(&self, bytes: usize) {
        self.budget.store(bytes, Ordering::Relaxed);
        let mut st = self.state.lock();
        while st.bytes > bytes {
            let Some(old) = st.order.pop_front() else { break };
            if let Some(gone) = st.entries.remove(&old) {
                st.bytes -= gone.len();
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Gauges: entries held and stored bytes right now.
    fn occupancy(&self) -> (u64, u64) {
        let st = self.state.lock();
        (st.entries.len() as u64, st.bytes as u64)
    }
}

/// Fixed-capacity page cache over a shared disk, striped into shards,
/// with overlapped faults, write-behind eviction, and an optional
/// compressed frame tier.
pub struct BufferPool {
    disk: Arc<dyn DiskManager>,
    shards: Box<[Shard]>,
    wb: Option<Arc<WriteBehind>>,
    flushers: Vec<std::thread::JoinHandle<()>>,
    ct: Option<Arc<CompressedTier>>,
    compressor: Option<std::thread::JoinHandle<()>>,
}

/// Construction knobs for [`BufferPool::with_pool_options`]. The
/// positional constructors delegate here; `Default` reproduces
/// [`BufferPool::new`]'s behavior except for the shard clamp (callers
/// of `new` get [`clamp_shards`] applied first).
#[derive(Clone, Debug)]
pub struct PoolOptions {
    /// Lock-striped shard count, clamped to `[1, capacity]`.
    pub shards: usize,
    /// Write-behind queue depth; 0 disables the queue (synchronous
    /// dirty evictions) and spawns no flusher threads.
    pub write_behind: usize,
    /// Number of write-behind drainer threads (min 1 when the queue is
    /// enabled). Per-page ordering is held by the gen-stamped
    /// `flushing` claim in [`WbSlot`], so drainers never race on a
    /// page: `pop_jobs` hands each slot to exactly one thread.
    pub flusher_threads: usize,
    /// Compressed-tier stored-bytes budget; 0 disables the tier.
    pub compressed_budget_bytes: usize,
}

impl Default for PoolOptions {
    fn default() -> Self {
        PoolOptions {
            shards: DEFAULT_POOL_SHARDS,
            write_behind: DEFAULT_WRITE_BEHIND,
            flusher_threads: 1,
            compressed_budget_bytes: 0,
        }
    }
}

impl BufferPool {
    /// Creates a pool of `capacity` frames over `disk` with an
    /// automatically sized shard count ([`DEFAULT_POOL_SHARDS`], reduced
    /// so every shard keeps at least [`MIN_FRAMES_PER_SHARD`] frames)
    /// and the default write-behind depth.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(disk: Arc<dyn DiskManager>, capacity: usize) -> Self {
        let shards = clamp_shards(capacity, DEFAULT_POOL_SHARDS);
        Self::new_sharded(disk, capacity, shards)
    }

    /// Creates a pool of `capacity` frames striped into exactly `shards`
    /// shards (clamped to `[1, capacity]`), with the default
    /// write-behind depth. Frames are distributed as evenly as possible;
    /// a shard only evicts among its own frames.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new_sharded(disk: Arc<dyn DiskManager>, capacity: usize, shards: usize) -> Self {
        Self::with_options(disk, capacity, shards, DEFAULT_WRITE_BEHIND, 0)
    }

    /// Full-control constructor: exact shard count (clamped to
    /// `[1, capacity]`), write-behind queue depth, and compressed-tier
    /// budget. `write_behind = 0` disables the queue and its flusher
    /// thread — every dirty eviction pays a synchronous
    /// [`DiskManager::write`], the pre-write-behind behavior, which
    /// benches use as the baseline. `compressed_budget_bytes = 0`
    /// disables the compressed frame tier and its compressor thread;
    /// nonzero bounds the *stored* (encoded) bytes the tier may hold.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn with_options(
        disk: Arc<dyn DiskManager>,
        capacity: usize,
        shards: usize,
        write_behind: usize,
        compressed_budget_bytes: usize,
    ) -> Self {
        Self::with_pool_options(
            disk,
            capacity,
            PoolOptions { shards, write_behind, flusher_threads: 1, compressed_budget_bytes },
        )
    }

    /// Struct-form constructor: everything [`BufferPool::with_options`]
    /// takes plus [`PoolOptions::flusher_threads`], which spawns N
    /// drainers over the one write-behind queue.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn with_pool_options(
        disk: Arc<dyn DiskManager>,
        capacity: usize,
        opts: PoolOptions,
    ) -> Self {
        let PoolOptions { shards, write_behind, flusher_threads, compressed_budget_bytes } = opts;
        assert!(capacity > 0, "buffer pool needs at least one frame");
        let nshards = shards.clamp(1, capacity);
        let page_size = disk.page_size();
        let shards = (0..nshards)
            .map(|i| {
                let n = capacity / nshards + usize::from(i < capacity % nshards);
                let frames = (0..n)
                    .map(|_| {
                        Arc::new(Frame {
                            data: RwLock::with_rank(lockrank::POOL_FRAME, Page::new(page_size)),
                            pin: AtomicU32::new(0),
                            dirty: AtomicBool::new(false),
                            refbit: AtomicBool::new(false),
                            prefetched: AtomicBool::new(false),
                        })
                    })
                    .collect();
                Shard {
                    frames,
                    map: Mutex::with_rank(
                        lockrank::POOL_SHARD_MAP,
                        ShardMap {
                            table: HashMap::new(),
                            resident: vec![None; n],
                            // Pop order: lowest index first, matching the old
                            // pool's first-free-frame scan.
                            free: (0..n).rev().collect(),
                            clock_hand: 0,
                        },
                    ),
                    stats: ShardStats::default(),
                }
            })
            .collect();
        let wb =
            (write_behind > 0).then(|| Arc::new(WriteBehind::new(Arc::clone(&disk), write_behind)));
        let flushers = match &wb {
            Some(wb) => (0..flusher_threads.max(1))
                .map(|i| {
                    let wb = Arc::clone(wb);
                    std::thread::Builder::new()
                        .name(format!("nbb-wb-flusher-{i}"))
                        .spawn(move || WriteBehind::run(wb))
                        // nbb-lint: allow(unwrap, thread spawn at pool construction; OS exhaustion is fatal)
                        .expect("spawn write-behind flusher")
                })
                .collect(),
            None => Vec::new(),
        };
        let ct = (compressed_budget_bytes > 0)
            .then(|| Arc::new(CompressedTier::new(compressed_budget_bytes)));
        let compressor = ct.as_ref().map(|ct| {
            let ct = Arc::clone(ct);
            std::thread::Builder::new()
                .name("nbb-compressor".into())
                .spawn(move || CompressedTier::run(ct))
                // nbb-lint: allow(unwrap, thread spawn at pool construction; OS exhaustion is fatal)
                .expect("spawn compressor")
        });
        BufferPool { disk, shards, wb, flushers, ct, compressor }
    }

    /// Shard owning `id`.
    #[inline]
    fn shard_of(&self, id: PageId) -> &Shard {
        &self.shards[(id.0 % self.shards.len() as u64) as usize]
    }

    /// Number of frames across all shards.
    pub fn capacity(&self) -> usize {
        self.shards.iter().map(|s| s.frames.len()).sum()
    }

    /// Number of lock-striped shards (≥ 1).
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Configured write-behind queue depth (0 = disabled: dirty
    /// evictions write synchronously).
    pub fn write_behind(&self) -> usize {
        self.wb.as_ref().map_or(0, |wb| wb.capacity)
    }

    /// Number of write-behind drainer threads (0 when the queue is
    /// disabled).
    pub fn flusher_threads(&self) -> usize {
        self.flushers.len()
    }

    /// Configured compressed-tier budget in stored bytes (0 = the tier
    /// is disabled and evicted pages are simply dropped).
    pub fn compressed_budget(&self) -> usize {
        self.ct.as_ref().map_or(0, |ct| ct.budget.load(Ordering::Relaxed))
    }

    /// Resizes the compressed tier's stored-bytes budget at runtime
    /// (the tuner's resize hook). Shrinking evicts oldest entries until
    /// the store fits. Returns `false` when the tier is disabled —
    /// whether the tier (and its compressor thread) exists is fixed at
    /// construction; this only moves the byte bound.
    pub fn set_compressed_budget(&self, bytes: usize) -> bool {
        match &self.ct {
            Some(ct) => {
                ct.set_budget(bytes);
                true
            }
            None => false,
        }
    }

    /// Test hook: while `held`, the compressor thread parks and faults
    /// served from the compressed tier block before decompressing —
    /// used by tests and harnesses to observe demotions queue up or to
    /// pile co-requesters onto one in-flight decompress fault. Release
    /// the gate before calling [`BufferPool::flush_all`] (its drain
    /// waits for the compressor). No-op when the tier is disabled.
    pub fn set_compression_gate(&self, held: bool) {
        let Some(ct) = &self.ct else { return };
        let mut st = ct.state.lock();
        st.gate_held = held;
        drop(st);
        if !held {
            ct.work_cv.notify_all();
        }
    }

    /// The disk this pool fronts.
    pub fn disk(&self) -> &Arc<dyn DiskManager> {
        &self.disk
    }

    /// Allocates a fresh page on disk and returns its id (not yet resident).
    pub fn new_page(&self) -> Result<PageId> {
        self.disk.allocate()
    }

    /// Allocates a fresh page, loads it, and runs `init` on it (dirtying).
    pub fn new_page_with<R>(&self, init: impl FnOnce(&mut Page) -> R) -> Result<(PageId, R)> {
        let id = self.disk.allocate()?;
        let r = self.with_page_mut(id, init)?;
        Ok((id, r))
    }

    /// Runs `f` with shared access to page `id`, pinning it for the duration.
    pub fn with_page<R>(&self, id: PageId, f: impl FnOnce(&Page) -> R) -> Result<R> {
        let frame = self.pin(id)?;
        let out = {
            let guard = frame.data.read();
            f(&guard)
        };
        Self::unpin(&frame);
        Ok(out)
    }

    /// Runs `f` with exclusive access to page `id`, marking the frame dirty.
    pub fn with_page_mut<R>(&self, id: PageId, f: impl FnOnce(&mut Page) -> R) -> Result<R> {
        let frame = self.pin(id)?;
        let out = {
            let mut guard = frame.data.write();
            frame.dirty.store(true, Ordering::Release);
            f(&mut guard)
        };
        Self::unpin(&frame);
        Ok(out)
    }

    /// Runs `f` with shared access to each page in `ids`, amortizing
    /// lock acquisitions across the batch: ids are grouped per shard and
    /// every resident member of a group is pinned under **one** shard
    /// map lock, instead of one acquisition per page as N
    /// [`BufferPool::with_page`] calls would take. Non-resident pages —
    /// including pages another thread is still loading — are collected
    /// across **all** shards and faulted in bounded chunks, each chunk
    /// riding one [`DiskManager::read_many`] no matter how its pages
    /// stripe over shards: a batch whose misses land on four shards pays
    /// one device round trip, not four.
    ///
    /// `f` receives `(position_in_ids, &Page)` and may be called in any
    /// order; the returned vector is indexed like `ids`. Duplicate ids
    /// are pinned once per occurrence and are safe.
    ///
    /// Hit/miss counters advance exactly as they would for point calls.
    pub fn with_page_batch<R>(
        &self,
        ids: &[PageId],
        mut f: impl FnMut(usize, &Page) -> R,
    ) -> Result<Vec<R>> {
        let mut by_shard: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
        for (i, id) in ids.iter().enumerate() {
            by_shard[(id.0 % self.shards.len() as u64) as usize].push(i);
        }
        let mut out: Vec<Option<R>> = ids.iter().map(|_| None).collect();
        // Misses from every shard, deferred past the hit pass so a
        // cross-shard group still coalesces into one device round trip
        // per chunk (the per-shard loop below only pins residents).
        let mut missed: Vec<usize> = Vec::new();
        for (si, group) in by_shard.iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let shard = &self.shards[si];
            // Pin the group's resident pages in bounded chunks: one
            // map-lock acquisition pins up to half the shard's frames,
            // so a batch never holds enough simultaneous pins to starve
            // a concurrent faulter of victims (N point calls hold at
            // most one pin; the chunk bound keeps that property within
            // a factor the shard can always absorb).
            let chunk = (shard.frames.len() / 2).max(1);
            let mut pinned: Vec<(usize, Arc<Frame>)> = Vec::with_capacity(chunk);
            for part in group.chunks(chunk) {
                {
                    // rank-exempt: pool entry point, re-enterable from
                    // user closures holding frame latches; see `pin`.
                    let map = shard.map.lock_unordered();
                    for &i in part {
                        if let Some(&Residency::Resident(idx)) = map.table.get(&ids[i]) {
                            let frame = &shard.frames[idx];
                            Self::touch_resident(shard, frame);
                            pinned.push((i, Arc::clone(frame)));
                        } else {
                            // Absent or Loading: collected for the
                            // batch fault pass below.
                            missed.push(i);
                        }
                    }
                }
                // Drain the hit pins before faulting the misses, so
                // batch pins never shrink the evictable set a miss may
                // need (a tiny single-shard pool must behave exactly
                // like N point calls would).
                for (i, frame) in pinned.drain(..) {
                    out[i] = Some(f(i, &frame.data.read()));
                    Self::unpin(&frame);
                }
            }
        }
        // Fault the misses of every shard as chunked groups: each chunk
        // reserves its absent pages in one map acquisition per shard,
        // the disk leftovers ride one `read_many` **spanning shards**,
        // and mid-flight loads are joined — the serial per-page fallback
        // only remains for pages the group could not reserve a frame
        // for. The chunk bound keeps simultaneous reservations within
        // what the smallest shard can always absorb (see
        // [`BufferPool::batch_chunk`]).
        for part in missed.chunks(self.batch_chunk()) {
            let part_ids: Vec<PageId> = part.iter().map(|&i| ids[i]).collect();
            let mut first_err: Option<StorageError> = None;
            for (slot, &i) in self.fault_batch(&part_ids, false).into_iter().zip(part) {
                match slot {
                    BatchSlot::Pinned(frame) => {
                        // Keep draining pins after an error so no
                        // sibling frame leaks a pin count.
                        if first_err.is_none() {
                            out[i] = Some(f(i, &frame.data.read()));
                        }
                        Self::unpin(&frame);
                    }
                    BatchSlot::Failed(e) => {
                        if first_err.is_none() {
                            first_err = Some(e);
                        }
                    }
                    BatchSlot::Skipped => {
                        if first_err.is_none() {
                            match self.pin(ids[i]) {
                                Ok(frame) => {
                                    out[i] = Some(f(i, &frame.data.read()));
                                    Self::unpin(&frame);
                                }
                                Err(e) => first_err = Some(e),
                            }
                        }
                    }
                }
            }
            if let Some(e) = first_err {
                return Err(e);
            }
        }
        // nbb-lint: allow(unwrap, the hit and miss passes cover every index)
        Ok(out.into_iter().map(|r| r.expect("every id visited")).collect())
    }

    /// Chunk bound for pool-level batch faults: even if every id in a
    /// chunk lands in the same shard, the group never pins more than
    /// half that shard's frames at once (N point calls hold at most one
    /// pin each; the bound keeps the batch within what any shard can
    /// always absorb).
    fn batch_chunk(&self) -> usize {
        let min = self.shards.iter().map(|s| s.frames.len()).min().unwrap_or(1);
        (min / 2).max(1)
    }

    /// Demand-faults every page in `ids` in batched groups — the
    /// eager form of [`BufferPool::with_page_batch`] for callers that
    /// want residency, not bytes. Each bounded chunk reserves its
    /// misses per shard (ascending order, one map acquisition each)
    /// and rides **one** [`DiskManager::read_many`] spanning the whole
    /// chunk, so adjacent ids coalesce even though they stripe across
    /// shards. Pages land resident, referenced, and unpinned. Returns
    /// the first per-page error (remaining pages are still faulted —
    /// per-page independence, as everywhere in the batch path).
    pub fn fault_many(&self, ids: &[PageId]) -> Result<()> {
        let mut first_err: Option<StorageError> = None;
        for part in ids.chunks(self.batch_chunk()) {
            for (slot, id) in self.fault_batch(part, false).into_iter().zip(part) {
                match slot {
                    BatchSlot::Pinned(frame) => Self::unpin(&frame),
                    BatchSlot::Failed(e) => {
                        if first_err.is_none() {
                            first_err = Some(e);
                        }
                    }
                    BatchSlot::Skipped => match self.pin(*id) {
                        Ok(frame) => Self::unpin(&frame),
                        Err(e) => {
                            if first_err.is_none() {
                                first_err = Some(e);
                            }
                        }
                    },
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Speculatively loads `ids` into spare frames — the readahead
    /// entry point. Best-effort and silent: pages already resident,
    /// already loading, unreservable, or failing their read are simply
    /// skipped (a scan that outruns its readahead demand-faults as
    /// usual). Loaded frames are published unpinned, unreferenced, and
    /// flagged `prefetched`, making them the clock's **first-choice
    /// victims**: speculation can never push out the demand-paged
    /// working set. Counters: `prefetch_issued` now, `prefetch_hits` /
    /// `prefetch_wasted` when each page's verdict lands.
    pub fn prefetch(&self, ids: &[PageId]) {
        for part in ids.chunks(self.batch_chunk()) {
            let _ = self.fault_batch(part, true);
        }
    }

    /// Runs `f` with exclusive access *without* dirtying the frame, and
    /// only if the frame latch is immediately available.
    ///
    /// Returns `Ok(None)` when the latch was contended — the caller is
    /// expected to simply skip its (cache) write, never to retry in a loop.
    pub fn with_page_cache_write<R>(
        &self,
        id: PageId,
        f: impl FnOnce(&mut Page) -> R,
    ) -> Result<Option<R>> {
        let frame = self.pin(id)?;
        let out = frame.data.try_write().map(|mut guard| f(&mut guard));
        Self::unpin(&frame);
        Ok(out)
    }

    /// True if page `id` is currently resident (a page mid-load is not
    /// yet resident).
    pub fn contains(&self, id: PageId) -> bool {
        // rank-exempt: read-only probe, callable from user closures
        // holding frame latches; acquires nothing under the map.
        matches!(
            self.shard_of(id).map.lock_unordered().table.get(&id),
            Some(Residency::Resident(_))
        )
    }

    /// Forces page `id` out of the pool (handing it to write-behind iff
    /// dirty).
    ///
    /// Used by tests and harnesses to simulate memory pressure; a no-op
    /// if the page is not resident. Fails if the page is pinned or mid-load.
    pub fn evict_page(&self, id: PageId) -> Result<()> {
        let shard = self.shard_of(id);
        // rank-exempt: pool entry point, re-enterable from user
        // closures holding frame latches; the victim latch taken below
        // is pin==0-guarded, so it can never block on such a closure.
        let mut map = shard.map.lock_unordered();
        let idx = match map.table.get(&id) {
            None => return Ok(()),
            Some(Residency::Loading(_)) => return Err(StorageError::BufferPoolExhausted),
            Some(&Residency::Resident(idx)) => idx,
        };
        let frame = &shard.frames[idx];
        if frame.pin.load(Ordering::Acquire) != 0 {
            return Err(StorageError::BufferPoolExhausted);
        }
        self.retire_victim(shard, frame, id)?;
        self.demote_victim(frame, id);
        Self::settle_evicted(shard, frame);
        map.table.remove(&id);
        map.resident[idx] = None;
        map.free.push(idx);
        shard.stats.evictions.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Writes back every dirty page: drains the write-behind queue
    /// first (evicted pages must not land *after* resident ones — a
    /// queued stale write racing a fresh flush would clobber it), then
    /// synchronously flushes resident dirty frames. This is the
    /// durability barrier `persist`/`close`/drop build on, and it holds
    /// against concurrent readers: while the barrier is active,
    /// evictions of pages with no queued slot write synchronously (no
    /// new slot can slip in behind the drain), and the sweep chases
    /// loads that were in flight when it passed — a page re-faulted
    /// from the queue re-enters memory dirty, and the sweep must not
    /// miss it mid-publish.
    pub fn flush_all(&self) -> Result<()> {
        if let Some(wb) = &self.wb {
            wb.begin_barrier();
        }
        let result = self.flush_all_locked_out();
        if let Some(wb) = &self.wb {
            wb.end_barrier();
        }
        result
    }

    /// The body of [`BufferPool::flush_all`], run with the write-behind
    /// barrier held.
    fn flush_all_locked_out(&self) -> Result<()> {
        if let Some(wb) = &self.wb {
            wb.drain()?;
        }
        if let Some(ct) = &self.ct {
            // Nothing here is durability state (entries are redundant
            // with the disk/queue by construction), but the barrier
            // promises a quiesced pool: no compression limbo survives
            // it, so post-flush observers see settled tier gauges.
            ct.drain();
        }
        for shard in self.shards.iter() {
            let mut resident: Vec<(PageId, usize)> = Vec::new();
            let mut loading: Vec<(PageId, Arc<InFlight>)> = Vec::new();
            {
                let map = shard.map.lock();
                for (idx, res) in map.resident.iter().enumerate() {
                    if let Some(pid) = res {
                        resident.push((*pid, idx));
                    }
                }
                for (pid, entry) in map.table.iter() {
                    if let Residency::Loading(inflight) = entry {
                        loading.push((*pid, Arc::clone(inflight)));
                    }
                }
            }
            // Map lock dropped: latching a pinned frame below can block
            // behind an arbitrarily long page writer without stalling
            // every pin/unpin on the shard (the old sweep latched under
            // the map — the hazard CONCURRENCY.md used to carve out).
            for (pid, idx) in resident {
                self.flush_frame_revalidated(shard, idx, pid)?;
            }
            // A load serviced from the write-behind store cancels its
            // queue slot and publishes a *dirty* frame; if it was
            // mid-flight when the resident pass ran, neither the drain
            // nor the pass saw those bytes. Wait the loads out (store
            // serves are a memcpy; disk serves publish clean frames and
            // merely cost the wait) and flush whatever landed dirty.
            for (pid, inflight) in loading {
                inflight.await_resolved();
                let target = {
                    let map = shard.map.lock();
                    match map.table.get(&pid) {
                        Some(&Residency::Resident(idx)) => Some(idx),
                        _ => None,
                    }
                };
                if let Some(idx) = target {
                    self.flush_frame_revalidated(shard, idx, pid)?;
                }
            }
        }
        Ok(())
    }

    /// Flushes frame `idx` iff it is dirty *and still holds `pid`*,
    /// without holding the shard map across the frame latch. The read
    /// latch is taken first; residency is then re-checked under a
    /// non-blocking map probe, because between snapshotting `(pid, idx)`
    /// and latching, an eviction may have recycled the frame for
    /// another page. That race is benign for durability — the
    /// write-behind barrier is up, so a concurrent evictor writes the
    /// departing dirty page synchronously itself — but writing the
    /// frame's *new* tenant under the old `pid` would corrupt the disk,
    /// hence the revalidation.
    fn flush_frame_revalidated(&self, shard: &Shard, idx: usize, pid: PageId) -> Result<()> {
        let frame = &shard.frames[idx];
        if !frame.dirty.load(Ordering::Acquire) {
            return Ok(());
        }
        let guard = frame.data.read();
        {
            // rank-exempt: frame(65) -> map(60) residency probe; read-only
            // and never blocks a map-holder (see CONCURRENCY.md §frame/map
            // exemption — same shape as unpin's bounded publish step).
            let map = shard.map.lock_unordered();
            if map.resident[idx] != Some(pid) {
                return Ok(());
            }
        }
        // Residency re-confirmed while we hold the read latch: loaders
        // need the write latch to recycle this frame, so it stays `pid`'s
        // until `guard` drops. Same protocol as `write_back_if_dirty`.
        self.disk.write(pid, &guard)?;
        frame.dirty.store(false, Ordering::Release);
        shard.stats.writebacks.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Hit/miss/eviction/fault/write-behind counters, aggregated across
    /// shards.
    pub fn stats(&self) -> PoolStats {
        let mut out = PoolStats::default();
        for s in self.shards.iter() {
            out.hits += s.stats.hits.load(Ordering::Relaxed);
            out.misses += s.stats.misses.load(Ordering::Relaxed);
            out.evictions += s.stats.evictions.load(Ordering::Relaxed);
            out.writebacks += s.stats.writebacks.load(Ordering::Relaxed);
            out.faults += s.stats.faults.load(Ordering::Relaxed);
            out.fault_joins += s.stats.fault_joins.load(Ordering::Relaxed);
            out.prefetch_issued += s.stats.prefetch_issued.load(Ordering::Relaxed);
            out.prefetch_hits += s.stats.prefetch_hits.load(Ordering::Relaxed);
            out.prefetch_wasted += s.stats.prefetch_wasted.load(Ordering::Relaxed);
            out.read_batches += s.stats.read_batches.load(Ordering::Relaxed);
            out.read_pages += s.stats.read_pages.load(Ordering::Relaxed);
        }
        if let Some(wb) = &self.wb {
            out.wb_enqueued = wb.enqueued.load(Ordering::Relaxed);
            out.wb_flushed = wb.flushed.load(Ordering::Relaxed);
            out.wb_sync_fallbacks = wb.sync_fallbacks.load(Ordering::Relaxed);
            out.wb_pending = wb.pending();
        }
        if let Some(ct) = &self.ct {
            out.compressed_hits = ct.hits.load(Ordering::Relaxed);
            out.compressed_evictions = ct.evictions.load(Ordering::Relaxed);
            out.decompress_stalls = ct.stalls.load(Ordering::Relaxed);
            out.compressed_ratio_num = ct.ratio_num.load(Ordering::Relaxed);
            out.compressed_ratio_den = ct.ratio_den.load(Ordering::Relaxed);
            let (pages, bytes) = ct.occupancy();
            out.compressed_pages = pages;
            out.compressed_bytes = bytes;
        }
        out
    }

    /// Zeroes the counters (the `wb_pending` gauge reflects live queue
    /// depth and is not a counter).
    pub fn reset_stats(&self) {
        for s in self.shards.iter() {
            s.stats.hits.store(0, Ordering::Relaxed);
            s.stats.misses.store(0, Ordering::Relaxed);
            s.stats.evictions.store(0, Ordering::Relaxed);
            s.stats.writebacks.store(0, Ordering::Relaxed);
            s.stats.faults.store(0, Ordering::Relaxed);
            s.stats.fault_joins.store(0, Ordering::Relaxed);
            s.stats.prefetch_issued.store(0, Ordering::Relaxed);
            s.stats.prefetch_hits.store(0, Ordering::Relaxed);
            s.stats.prefetch_wasted.store(0, Ordering::Relaxed);
            s.stats.read_batches.store(0, Ordering::Relaxed);
            s.stats.read_pages.store(0, Ordering::Relaxed);
        }
        if let Some(wb) = &self.wb {
            wb.enqueued.store(0, Ordering::Relaxed);
            wb.flushed.store(0, Ordering::Relaxed);
            wb.sync_fallbacks.store(0, Ordering::Relaxed);
        }
        if let Some(ct) = &self.ct {
            ct.hits.store(0, Ordering::Relaxed);
            ct.evictions.store(0, Ordering::Relaxed);
            ct.stalls.store(0, Ordering::Relaxed);
            ct.ratio_num.store(0, Ordering::Relaxed);
            ct.ratio_den.store(0, Ordering::Relaxed);
        }
    }

    /// Takes a dirty victim off the eviction path: enqueues its bytes to
    /// write-behind (a memcpy) instead of a synchronous device write.
    /// Falls back to the synchronous write when write-behind is disabled
    /// or full. On error the victim stays dirty and resident.
    fn retire_victim(&self, shard: &Shard, frame: &Frame, pid: PageId) -> Result<()> {
        if !frame.dirty.load(Ordering::Acquire) {
            return Ok(());
        }
        let guard = frame.data.read();
        match &self.wb {
            Some(wb) => wb.enqueue(pid, &guard)?,
            None => self.disk.write(pid, &guard)?,
        }
        frame.dirty.store(false, Ordering::Release);
        shard.stats.writebacks.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Offers a just-retired (clean) victim to the compressed tier.
    /// Runs strictly after [`BufferPool::retire_victim`], so a dirty
    /// victim's bytes are already on disk or in the write-behind queue
    /// — the tier entry is pure cache and durability ordering is
    /// untouched. Infallible and non-blocking: at worst the demotion
    /// is skipped (full queue) and the eviction proceeds as always.
    fn demote_victim(&self, frame: &Frame, pid: PageId) {
        let Some(ct) = &self.ct else { return };
        // Clone outside the tier lock (the `WriteBehind::enqueue`
        // argument: under the shared lock only pointers should move).
        let copy = frame.data.read().clone();
        ct.enqueue_demotion(pid, copy);
    }

    /// Hit-path bookkeeping shared by the point and batch paths: pin,
    /// reference, count the hit, and settle a pending prefetch verdict
    /// (first demand touch of a speculative frame = `prefetch_hits`).
    /// Caller holds the shard map lock.
    #[inline]
    fn touch_resident(shard: &Shard, frame: &Frame) {
        frame.pin.fetch_add(1, Ordering::AcqRel);
        frame.refbit.store(true, Ordering::Relaxed);
        if frame.prefetched.load(Ordering::Relaxed) {
            frame.prefetched.store(false, Ordering::Relaxed);
            shard.stats.prefetch_hits.fetch_add(1, Ordering::Relaxed);
        }
        shard.stats.hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Eviction-path prefetch verdict: a speculative frame evicted
    /// before anyone touched it was wasted readahead. Caller holds the
    /// shard map lock.
    #[inline]
    fn settle_evicted(shard: &Shard, frame: &Frame) {
        if frame.prefetched.swap(false, Ordering::Relaxed) {
            shard.stats.prefetch_wasted.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Pins `id` into a frame of its shard: a hit pins the resident
    /// frame, a request for a page mid-load parks on it, and a true miss
    /// becomes the loader — it reserves a frame, installs `Loading`,
    /// **releases the shard map lock across the read**, then publishes
    /// the frame and wakes its waiters (each with a pre-granted pin).
    ///
    /// Every exit leaves the shard consistent: a failed victim
    /// write-back keeps the victim resident (and dirty); a failed load
    /// frees the — by then possibly clobbered — frame, poisons only its
    /// own waiters, and maps nothing to it.
    fn pin(&self, id: PageId) -> Result<Arc<Frame>> {
        let shard = self.shard_of(id);
        // rank-exempt: every pool entry point funnels through here, and
        // user closures re-enter the pool while holding frame latches
        // (nested `with_page` on distinct pages — latch coupling). The
        // map-under-frame acquisition cannot deadlock because the only
        // *blocking* frame latches taken under a map lock target
        // unpinned victims (`retire_victim`/`demote_victim`), and a
        // closure-held frame is pinned by definition. (`flush_all`'s
        // sweep used to be the one map-holder latching pinned frames;
        // it now snapshots under the map and latches after dropping it
        // — `flush_frame_revalidated`.)
        let mut map = shard.map.lock_unordered();
        match map.table.get(&id) {
            Some(&Residency::Resident(idx)) => {
                let frame = &shard.frames[idx];
                Self::touch_resident(shard, frame);
                return Ok(Arc::clone(frame));
            }
            Some(Residency::Loading(inflight)) => {
                // Coalesce: register for a pin, then park off-lock.
                let inflight = Arc::clone(inflight);
                inflight.joiners.fetch_add(1, Ordering::Relaxed);
                shard.stats.misses.fetch_add(1, Ordering::Relaxed);
                shard.stats.fault_joins.fetch_add(1, Ordering::Relaxed);
                drop(map);
                return inflight.wait();
            }
            None => {}
        }
        shard.stats.misses.fetch_add(1, Ordering::Relaxed);
        shard.stats.faults.fetch_add(1, Ordering::Relaxed);
        let idx = Self::find_victim(shard, &mut map)?;
        let frame = &shard.frames[idx];
        if let Some(old) = map.resident[idx] {
            // On error the victim stays resident and dirty — consistent.
            self.retire_victim(shard, frame, old)?;
            self.demote_victim(frame, old);
            Self::settle_evicted(shard, frame);
            map.table.remove(&old);
            map.resident[idx] = None;
            shard.stats.evictions.fetch_add(1, Ordering::Relaxed);
        }
        // Reserve the frame: pinned (the clock skips it) but mapped to
        // nothing, then fault with the shard unlocked so neighbors
        // proceed and same-page requesters park instead of re-reading.
        frame.pin.store(1, Ordering::Release);
        let inflight = Arc::new(InFlight::new());
        map.table.insert(id, Residency::Loading(Arc::clone(&inflight)));
        drop(map);

        // If the disk panics instead of erroring, unwind like a failed
        // read: free the frame, poison the waiters, no zombie entry.
        let mut abort = LoadAbortGuard { shard, id, idx, inflight: &inflight, armed: true };
        let mut decompressed = false;
        let loaded: Result<bool> = {
            let mut guard = frame.data.write();
            // Storage hierarchy for a fault: the write-behind store may
            // hold newer bytes than the disk (a page re-faulted from it
            // re-enters memory dirty); below it, the compressed tier
            // serves the load as an in-memory decode; the disk is last.
            match &self.wb {
                Some(wb) if wb.serve_fault(id, &mut guard) => Ok(true),
                _ => match self.ct.as_ref().and_then(|ct| ct.claim(id)) {
                    Some(enc) => match pagecodec::decompress(&enc, guard.bytes_mut()) {
                        Ok(()) => {
                            decompressed = true;
                            Ok(false)
                        }
                        // The entry was already claimed off the tier, so
                        // the retry this poisons everyone into will read
                        // the disk — a corrupt entry heals, never wedges.
                        Err(e) => Err(StorageError::Io(format!("decompress page {id}: {e}"))),
                    },
                    None => self.disk.read(id, &mut guard).map(|()| false),
                },
            }
        };
        abort.armed = false;

        // rank-exempt: publish step of a fault that may itself be
        // nested under the caller's outer frame latches; see the entry
        // acquisition above.
        let mut map = shard.map.lock_unordered();
        // Only the loader resolves its Loading entry, so the joiner
        // count is final once we swap the entry out below.
        let joiners = inflight.joiners.load(Ordering::Relaxed);
        match loaded {
            Ok(dirty) => {
                if let Some(ct) = &self.ct {
                    // The frame is the authority now: drop any stored
                    // entry (wb- and disk-served loads may shadow a
                    // staler one) and cancel any pending demotion job
                    // queued before this page's last absence.
                    ct.invalidate(id);
                    if decompressed {
                        ct.hits.fetch_add(1, Ordering::Relaxed);
                        ct.stalls.fetch_add(u64::from(joiners), Ordering::Relaxed);
                    }
                }
                frame.dirty.store(dirty, Ordering::Release);
                // One pin for us plus one pre-granted to each parked
                // waiter: none of them can lose the frame to eviction
                // between wake-up and use.
                frame.pin.store(1 + joiners, Ordering::Release);
                frame.refbit.store(true, Ordering::Relaxed);
                frame.prefetched.store(false, Ordering::Relaxed);
                map.table.insert(id, Residency::Resident(idx));
                map.resident[idx] = Some(id);
                drop(map);
                inflight.resolve(Ok(Arc::clone(frame)));
                Ok(Arc::clone(frame))
            }
            Err(e) => {
                // The failed read may have clobbered the frame bytes;
                // free the frame (unpinned, mapped to nothing) and
                // poison every parked waiter with the error.
                frame.dirty.store(false, Ordering::Release);
                frame.pin.store(0, Ordering::Release);
                map.table.remove(&id);
                map.free.push(idx);
                drop(map);
                inflight.resolve(Err(e.clone()));
                Err(e)
            }
        }
    }

    /// Faults a batch of pages — any mix of shards — with **one** map
    /// acquisition *per shard* to reserve the misses (shards visited in
    /// ascending order, never held together), **one** `read_many`
    /// spanning the whole batch for the pages no memory tier could
    /// serve, and one map acquisition per shard to publish. Keeping the
    /// disk batch pool-wide is what lets adjacent page ids — which
    /// stripe one-per-shard — still coalesce into a single device
    /// round-trip. The per-page guarantees of [`BufferPool::pin`] are
    /// preserved exactly: concurrent requesters join each page's own
    /// `InFlight`, a failed page poisons only its own entry, and a
    /// panicking disk unwinds through [`BatchAbortGuard`] like a failed
    /// read.
    ///
    /// Demand mode (`speculative == false`) returns one [`BatchSlot`]
    /// per input position; already-resident pages are pinned (hit
    /// bookkeeping), mid-load pages are joined (the waits run *after*
    /// this batch publishes, so a batch can never deadlock on its own
    /// duplicates). Speculative mode touches nothing already resident
    /// or loading, publishes loaded frames unpinned with the
    /// `prefetched` flag set (first-choice victims), and reports
    /// nothing — every slot comes back `Skipped`.
    fn fault_batch(&self, ids: &[PageId], speculative: bool) -> Vec<BatchSlot> {
        let mut slots: Vec<BatchSlot> = ids.iter().map(|_| BatchSlot::Skipped).collect();
        let nshards = self.shards.len();
        let mut by_shard: Vec<Vec<usize>> = vec![Vec::new(); nshards];
        for (pos, id) in ids.iter().enumerate() {
            by_shard[(id.0 % nshards as u64) as usize].push(pos);
        }
        // (position, page, shard index, frame index, its Loading entry)
        // per reserved miss, contiguous by shard in ascending order.
        let mut reserved: Vec<(usize, PageId, usize, usize, Arc<InFlight>)> = Vec::new();
        // (position, in-flight load) per mid-flight join; parked on last.
        let mut joins: Vec<(usize, Arc<InFlight>)> = Vec::new();
        for (si, group) in by_shard.iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let shard = &self.shards[si];
            // rank-exempt: batch twin of the `pin` entry acquisition,
            // re-enterable from user closures holding frame latches.
            // One shard map at a time, ascending — never two at once.
            let mut map = shard.map.lock_unordered();
            for &pos in group {
                let id = ids[pos];
                match map.table.get(&id) {
                    Some(&Residency::Resident(idx)) => {
                        if !speculative {
                            let frame = &shard.frames[idx];
                            Self::touch_resident(shard, frame);
                            slots[pos] = BatchSlot::Pinned(Arc::clone(frame));
                        }
                    }
                    Some(Residency::Loading(inflight)) => {
                        if !speculative {
                            let inflight = Arc::clone(inflight);
                            inflight.joiners.fetch_add(1, Ordering::Relaxed);
                            shard.stats.misses.fetch_add(1, Ordering::Relaxed);
                            shard.stats.fault_joins.fetch_add(1, Ordering::Relaxed);
                            joins.push((pos, inflight));
                        }
                    }
                    None => {
                        // A shard out of victims degrades gracefully:
                        // this page is skipped, the rest of the batch
                        // proceeds.
                        let Ok(idx) = Self::find_victim(shard, &mut map) else {
                            continue;
                        };
                        let frame = &shard.frames[idx];
                        if let Some(old) = map.resident[idx] {
                            match self.retire_victim(shard, frame, old) {
                                Ok(()) => {}
                                // Victim stays resident and dirty, same
                                // as the point path.
                                Err(e) => {
                                    if !speculative {
                                        slots[pos] = BatchSlot::Failed(e);
                                    }
                                    continue;
                                }
                            }
                            self.demote_victim(frame, old);
                            Self::settle_evicted(shard, frame);
                            map.table.remove(&old);
                            map.resident[idx] = None;
                            shard.stats.evictions.fetch_add(1, Ordering::Relaxed);
                        }
                        frame.pin.store(1, Ordering::Release);
                        let inflight = Arc::new(InFlight::new());
                        map.table.insert(id, Residency::Loading(Arc::clone(&inflight)));
                        shard.stats.misses.fetch_add(1, Ordering::Relaxed);
                        shard.stats.faults.fetch_add(1, Ordering::Relaxed);
                        if speculative {
                            shard.stats.prefetch_issued.fetch_add(1, Ordering::Relaxed);
                        }
                        reserved.push((pos, id, si, idx, inflight));
                    }
                }
            }
        }

        if !reserved.is_empty() {
            // Armed before the frame latches below so an unwind drops
            // the latches first, then frees the reservations.
            let mut abort = BatchAbortGuard {
                shards: &self.shards,
                entries: reserved
                    .iter()
                    .map(|(_, id, si, idx, inf)| (*id, *si, *idx, Arc::clone(inf)))
                    .collect(),
            };

            // Latch every reserved frame at once (frame latches are a
            // multi rank, and a just-reserved frame — pinned, mapped to
            // nothing — has no other suitor), then walk the storage
            // hierarchy per page; only the leftovers ride the disk batch.
            enum Serve {
                Loaded { dirty: bool, decompressed: bool },
                NeedsDisk,
                Failed(StorageError),
            }
            let mut guards: Vec<_> = reserved
                .iter()
                .map(|(_, _, si, idx, _)| self.shards[*si].frames[*idx].data.write())
                .collect();
            let mut serves: Vec<Serve> = Vec::with_capacity(reserved.len());
            for (k, (_, id, _, _, _)) in reserved.iter().enumerate() {
                let guard = &mut guards[k];
                if let Some(wb) = &self.wb {
                    if wb.serve_fault(*id, guard) {
                        serves.push(Serve::Loaded { dirty: true, decompressed: false });
                        continue;
                    }
                }
                match self.ct.as_ref().and_then(|ct| ct.claim(*id)) {
                    Some(enc) => match pagecodec::decompress(&enc, guard.bytes_mut()) {
                        Ok(()) => serves.push(Serve::Loaded { dirty: false, decompressed: true }),
                        Err(e) => serves.push(Serve::Failed(StorageError::Io(format!(
                            "decompress page {id}: {e}"
                        )))),
                    },
                    None => serves.push(Serve::NeedsDisk),
                }
            }
            let mut batch_ks: Vec<usize> = Vec::new();
            {
                let mut batch: Vec<(PageId, &mut Page)> = Vec::new();
                for (k, guard) in guards.iter_mut().enumerate() {
                    if matches!(serves[k], Serve::NeedsDisk) {
                        batch.push((reserved[k].1, &mut **guard));
                        batch_ks.push(k);
                    }
                }
                if !batch.is_empty() {
                    // One device round-trip for the whole batch: the
                    // batch count lands on the first page's shard, each
                    // page on its own (aggregation sums the shards, so
                    // the pool-level ratio stays pages-per-round-trip).
                    self.shards[reserved[batch_ks[0]].2]
                        .stats
                        .read_batches
                        .fetch_add(1, Ordering::Relaxed);
                    for &k in &batch_ks {
                        self.shards[reserved[k].2].stats.read_pages.fetch_add(1, Ordering::Relaxed);
                    }
                    let res = self.disk.read_many(&mut batch);
                    drop(batch);
                    match res {
                        Ok(()) => {
                            for &k in &batch_ks {
                                serves[k] = Serve::Loaded { dirty: false, decompressed: false };
                            }
                        }
                        // A batch error makes no claim about which pages
                        // landed; re-read each one (idempotent by the
                        // `read_many` contract) so only the genuinely
                        // failing pages poison their entries.
                        Err(_) => {
                            for &k in &batch_ks {
                                serves[k] = match self.disk.read(reserved[k].1, &mut guards[k]) {
                                    Ok(()) => Serve::Loaded { dirty: false, decompressed: false },
                                    Err(e) => Serve::Failed(e),
                                };
                            }
                        }
                    }
                }
            }
            drop(guards);

            let mut resolutions: Vec<Resolution> = Vec::with_capacity(reserved.len());
            // Publish shard by shard in reservation (ascending) order;
            // `reserved` is contiguous per shard, so each run is one
            // map acquisition. Guard entries parallel `reserved` — the
            // published prefix is drained before the shard's map drops,
            // so an unwind can never double-free a published frame.
            let mut iter = reserved.into_iter().zip(serves).peekable();
            while let Some(((_, _, next_si, _, _), _)) = iter.peek() {
                let si = *next_si;
                let shard = &self.shards[si];
                // rank-exempt: batch twin of `pin`'s publish
                // acquisition; may be nested under the caller's outer
                // frame latches. One shard map at a time, ascending.
                let mut map = shard.map.lock_unordered();
                let mut published = 0usize;
                loop {
                    match iter.peek() {
                        Some(((_, _, s, _, _), _)) if *s == si => {}
                        _ => break,
                    }
                    let Some(((pos, id, _, idx, inflight), serve)) = iter.next() else {
                        break;
                    };
                    published += 1;
                    let frame = &shard.frames[idx];
                    // Only this batch resolves these entries, so the
                    // joiner counts are final once the entries leave
                    // the table.
                    let joiners = inflight.joiners.load(Ordering::Relaxed);
                    match serve {
                        Serve::Loaded { dirty, decompressed } => {
                            if let Some(ct) = &self.ct {
                                ct.invalidate(id);
                                if decompressed {
                                    ct.hits.fetch_add(1, Ordering::Relaxed);
                                    ct.stalls.fetch_add(u64::from(joiners), Ordering::Relaxed);
                                }
                            }
                            frame.dirty.store(dirty, Ordering::Release);
                            if speculative {
                                // No requester yet: published unpinned (bar
                                // pins pre-granted to mid-flight joiners),
                                // unreferenced, and flagged first-choice
                                // victim. A joiner *is* a requester — the
                                // speculation already paid off.
                                frame.pin.store(joiners, Ordering::Release);
                                if joiners > 0 {
                                    frame.refbit.store(true, Ordering::Relaxed);
                                    frame.prefetched.store(false, Ordering::Relaxed);
                                    shard.stats.prefetch_hits.fetch_add(1, Ordering::Relaxed);
                                } else {
                                    frame.refbit.store(false, Ordering::Relaxed);
                                    frame.prefetched.store(true, Ordering::Relaxed);
                                }
                            } else {
                                frame.pin.store(1 + joiners, Ordering::Release);
                                frame.refbit.store(true, Ordering::Relaxed);
                                frame.prefetched.store(false, Ordering::Relaxed);
                            }
                            map.table.insert(id, Residency::Resident(idx));
                            map.resident[idx] = Some(id);
                            if !speculative {
                                slots[pos] = BatchSlot::Pinned(Arc::clone(frame));
                            }
                            resolutions.push((inflight, Ok(Arc::clone(frame))));
                        }
                        Serve::Failed(e) => {
                            frame.dirty.store(false, Ordering::Release);
                            frame.pin.store(0, Ordering::Release);
                            frame.prefetched.store(false, Ordering::Relaxed);
                            map.table.remove(&id);
                            map.free.push(idx);
                            if !speculative {
                                slots[pos] = BatchSlot::Failed(e.clone());
                            }
                            resolutions.push((inflight, Err(e)));
                        }
                        // nbb-lint: allow(unwrap, every NeedsDisk was rewritten by the batch or fallback reads)
                        Serve::NeedsDisk => unreachable!("NeedsDisk survived the disk pass"),
                    }
                }
                abort.entries.drain(..published);
                drop(map);
            }
            for (inflight, outcome) in resolutions {
                inflight.resolve(outcome);
            }
        }

        // Park on the joins only now that our own batch has published —
        // a duplicate id in one batch joins its own first occurrence.
        for (pos, inflight) in joins {
            slots[pos] = match inflight.wait() {
                Ok(frame) => BatchSlot::Pinned(frame),
                Err(e) => BatchSlot::Failed(e),
            };
        }
        slots
    }

    #[inline]
    fn unpin(frame: &Frame) {
        frame.pin.fetch_sub(1, Ordering::AcqRel);
    }

    /// Clock (second-chance) victim selection over the shard's unpinned
    /// frames; free frames are taken from the free list first, then
    /// untouched prefetched frames, then the clock sweep. Frames
    /// reserved by an in-flight load are pinned, so the clock never
    /// steals them.
    fn find_victim(shard: &Shard, map: &mut ShardMap) -> Result<usize> {
        if let Some(idx) = map.free.pop() {
            return Ok(idx);
        }
        // Speculation goes first: a prefetched frame nobody touched is
        // reclaimed before the clock disturbs the demand-paged set, so
        // readahead can never evict working-set pages to make room for
        // more readahead. (Flag transitions all happen under the shard
        // map lock, so the scan is race-free.)
        for (idx, frame) in shard.frames.iter().enumerate() {
            if frame.prefetched.load(Ordering::Relaxed) && frame.pin.load(Ordering::Acquire) == 0 {
                return Ok(idx);
            }
        }
        let n = shard.frames.len();
        // Two sweeps: the first clears reference bits, the second takes
        // the first unpinned frame. 2n+1 steps bound the scan.
        for _ in 0..(2 * n + 1) {
            let idx = map.clock_hand;
            map.clock_hand = (map.clock_hand + 1) % n;
            let frame = &shard.frames[idx];
            if frame.pin.load(Ordering::Acquire) != 0 {
                continue;
            }
            if frame.refbit.swap(false, Ordering::Relaxed) {
                continue;
            }
            return Ok(idx);
        }
        Err(StorageError::BufferPoolExhausted)
    }
}

impl Drop for BufferPool {
    /// Drains the write-behind queue before the pool disappears:
    /// evicted-dirty pages were already written by eviction time under
    /// the old synchronous scheme, so write-behind must guarantee they
    /// reach the disk by drop at the latest. (Resident dirty frames are
    /// — as before — the caller's to flush via
    /// [`BufferPool::flush_all`].) Errors are swallowed; the
    /// error-visible barrier is `flush_all`. The compressor thread is
    /// simply shut down and joined — its store is cache, nothing to
    /// persist (a shutdown flag also unjams a worker parked on a test
    /// gate someone forgot to release).
    fn drop(&mut self) {
        if let Some(ct) = &self.ct {
            {
                let mut st = ct.state.lock();
                st.shutdown = true;
                ct.work_cv.notify_all();
            }
            if let Some(h) = self.compressor.take() {
                let _ = h.join();
            }
        }
        let Some(wb) = &self.wb else { return };
        {
            let mut st = wb.state.lock();
            st.shutdown = true;
            wb.work_cv.notify_all();
        }
        for h in self.flushers.drain(..) {
            let _ = h.join();
        }
        // The flushers drained everything flushable; give parked
        // failures one last synchronous attempt.
        let mut st = wb.state.lock();
        let remaining: Vec<PageId> = st.slots.keys().copied().collect();
        for pid in remaining {
            // nbb-lint: allow(unwrap, key taken from the same locked map one line up)
            let slot = st.slots.remove(&pid).expect("key just listed");
            let _ = wb.disk.write(pid, &slot.page);
        }
    }
}

/// Clamps a requested shard count so every shard keeps at least
/// [`MIN_FRAMES_PER_SHARD`] frames (never below one shard). This is the
/// one place the headroom policy lives — [`BufferPool::new`] applies it
/// to [`DEFAULT_POOL_SHARDS`], and `nbb-core`'s `DbConfig` applies it
/// to its `pool_shards` knob.
pub fn clamp_shards(capacity: usize, requested: usize) -> usize {
    requested.clamp(1, (capacity / MIN_FRAMES_PER_SHARD).max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::InMemoryDisk;
    use crate::stats::IoStats;

    fn pool(cap: usize) -> (Arc<BufferPool>, Arc<InMemoryDisk>) {
        let disk = Arc::new(InMemoryDisk::new(256));
        let pool = Arc::new(BufferPool::new(Arc::clone(&disk) as Arc<dyn DiskManager>, cap));
        (pool, disk)
    }

    /// The one write-gated test double behind every "freeze the
    /// flusher mid-write" scenario: writes (point and batched) block
    /// while the gate is held, each call counts as one attempt, and
    /// batch sizes are recorded (a point write records size 1).
    struct GatedWriteDisk {
        inner: InMemoryDisk,
        held: Mutex<bool>,
        cv: Condvar,
        write_attempts: AtomicU64,
        batch_sizes: Mutex<Vec<usize>>,
    }

    impl GatedWriteDisk {
        fn new(page_size: usize, held: bool) -> Self {
            GatedWriteDisk {
                inner: InMemoryDisk::new(page_size),
                held: Mutex::new(held),
                cv: Condvar::new(),
                write_attempts: AtomicU64::new(0),
                batch_sizes: Mutex::new(Vec::new()),
            }
        }

        fn release(&self) {
            *self.held.lock() = false;
            self.cv.notify_all();
        }

        fn gate(&self, batch: usize) {
            self.write_attempts.fetch_add(1, Ordering::Relaxed);
            self.batch_sizes.lock().push(batch);
            let mut held = self.held.lock();
            while *held {
                self.cv.wait(&mut held);
            }
        }
    }

    impl DiskManager for GatedWriteDisk {
        fn page_size(&self) -> usize {
            self.inner.page_size()
        }
        fn allocate(&self) -> Result<PageId> {
            self.inner.allocate()
        }
        fn read(&self, id: PageId, buf: &mut Page) -> Result<()> {
            self.inner.read(id, buf)
        }
        fn write(&self, id: PageId, page: &Page) -> Result<()> {
            self.gate(1);
            self.inner.write(id, page)
        }
        fn write_many(&self, pages: &[(PageId, &Page)]) -> Result<()> {
            self.gate(pages.len());
            for (id, page) in pages {
                self.inner.write(*id, page)?;
            }
            Ok(())
        }
        fn num_pages(&self) -> u64 {
            self.inner.num_pages()
        }
        fn stats(&self) -> IoStats {
            self.inner.stats()
        }
        fn reset_stats(&self) {
            self.inner.reset_stats()
        }
    }

    #[test]
    fn read_your_writes() {
        let (pool, _) = pool(4);
        let id = pool.new_page().unwrap();
        pool.with_page_mut(id, |p| p.bytes_mut()[0] = 42).unwrap();
        let v = pool.with_page(id, |p| p.bytes()[0]).unwrap();
        assert_eq!(v, 42);
    }

    #[test]
    fn dirty_pages_survive_eviction() {
        let (pool, _) = pool(2);
        let a = pool.new_page().unwrap();
        pool.with_page_mut(a, |p| p.bytes_mut()[0] = 7).unwrap();
        // Evict `a` by touching other pages.
        for _ in 0..4 {
            let x = pool.new_page().unwrap();
            pool.with_page(x, |_| ()).unwrap();
        }
        assert!(!pool.contains(a));
        let v = pool.with_page(a, |p| p.bytes()[0]).unwrap();
        assert_eq!(v, 7, "dirty page must survive eviction (write-behind or disk)");
        assert!(pool.stats().writebacks >= 1);
    }

    #[test]
    fn write_behind_serves_refault_and_flushes() {
        // A dirty evictee parks in the write-behind queue; a re-fault
        // must see the queued (newer-than-disk) bytes, and flush_all
        // must land them on disk.
        let (pool, disk) = pool(2);
        let a = pool.new_page().unwrap();
        pool.with_page_mut(a, |p| p.bytes_mut()[0] = 77).unwrap();
        pool.evict_page(a).unwrap();
        assert_eq!(pool.with_page(a, |p| p.bytes()[0]).unwrap(), 77);
        pool.flush_all().unwrap();
        let mut raw = Page::new(256);
        disk.read(a, &mut raw).unwrap();
        assert_eq!(raw.bytes()[0], 77, "flush_all must drain write-behind");
        let s = pool.stats();
        assert!(s.wb_enqueued >= 1, "dirty eviction must enqueue: {s:?}");
        assert_eq!(s.wb_pending, 0, "drained queue must be empty");
    }

    #[test]
    fn write_behind_disabled_writes_synchronously() {
        let disk = Arc::new(InMemoryDisk::new(256));
        let pool = BufferPool::with_options(Arc::clone(&disk) as Arc<dyn DiskManager>, 2, 1, 0, 0);
        assert_eq!(pool.write_behind(), 0);
        let a = pool.new_page().unwrap();
        pool.with_page_mut(a, |p| p.bytes_mut()[0] = 9).unwrap();
        pool.evict_page(a).unwrap();
        // Synchronous mode: the bytes are on disk the moment the victim
        // is reclaimed.
        let mut raw = Page::new(256);
        disk.read(a, &mut raw).unwrap();
        assert_eq!(raw.bytes()[0], 9);
        let s = pool.stats();
        assert_eq!(s.wb_enqueued, 0);
        assert_eq!(s.writebacks, 1);
    }

    #[test]
    fn drop_drains_write_behind() {
        let disk = Arc::new(InMemoryDisk::new(256));
        let a;
        {
            let pool = BufferPool::new(Arc::clone(&disk) as Arc<dyn DiskManager>, 2);
            a = pool.new_page().unwrap();
            pool.with_page_mut(a, |p| p.bytes_mut()[0] = 33).unwrap();
            pool.evict_page(a).unwrap();
            // No flush_all: drop itself is the durability barrier for
            // already-evicted pages.
        }
        let mut raw = Page::new(256);
        disk.read(a, &mut raw).unwrap();
        assert_eq!(raw.bytes()[0], 33, "drop must drain the write-behind queue");
    }

    #[test]
    fn flusher_drains_queue_in_batches_through_write_many() {
        // Writes gated from the start: evictions provably pile up in
        // the queue while the flusher is frozen mid-write, so the next
        // claim must come out as one multi-page batch.
        const PAGES: usize = 8;
        let disk = Arc::new(GatedWriteDisk::new(256, true));
        let pool = Arc::new(BufferPool::with_options(
            Arc::clone(&disk) as Arc<dyn DiskManager>,
            16,
            1,
            64,
            0,
        ));
        let ids: Vec<PageId> = (0..PAGES).map(|_| pool.new_page().unwrap()).collect();
        for (i, id) in ids.iter().enumerate() {
            pool.with_page_mut(*id, |p| p.bytes_mut()[0] = i as u8).unwrap();
        }
        // With writes gated, the flusher's first claim blocks mid-batch
        // and the rest of the evictions pile up behind it.
        for id in &ids {
            pool.evict_page(*id).unwrap();
        }
        disk.release();
        while pool.stats().wb_pending > 0 {
            std::thread::yield_now();
        }
        let sizes = disk.batch_sizes.lock().clone();
        assert_eq!(sizes.iter().sum::<usize>(), PAGES, "every queued page flushed: {sizes:?}");
        assert!(
            sizes.iter().any(|&s| s >= 2),
            "the flusher must drain in multi-page write_many batches, got {sizes:?}"
        );
        for (i, id) in ids.iter().enumerate() {
            let mut raw = Page::new(256);
            disk.inner.read(*id, &mut raw).unwrap();
            assert_eq!(raw.bytes()[0], i as u8, "page {i} lost in the batched drain");
        }
    }

    #[test]
    fn wb_sync_fallback_is_counted() {
        // Writes gated, so the one queue slot provably stays occupied
        // while a second eviction arrives.
        let disk = Arc::new(GatedWriteDisk::new(256, true));
        // Queue depth 1: the second distinct dirty eviction must fall
        // back to a synchronous write — the documented stall regime —
        // and the new counter must make it observable.
        let pool = Arc::new(BufferPool::with_options(
            Arc::clone(&disk) as Arc<dyn DiskManager>,
            4,
            1,
            1,
            0,
        ));
        let a = pool.new_page().unwrap();
        let b = pool.new_page().unwrap();
        pool.with_page_mut(a, |p| p.bytes_mut()[0] = 1).unwrap();
        pool.with_page_mut(b, |p| p.bytes_mut()[0] = 2).unwrap();
        pool.evict_page(a).unwrap(); // fills the one-slot queue
        assert_eq!(pool.stats().wb_sync_fallbacks, 0);
        let evictor = {
            let pool = Arc::clone(&pool);
            std::thread::spawn(move || pool.evict_page(b))
        };
        // The counter bumps *before* the blocking write, so the stall
        // is visible while it happens.
        while pool.stats().wb_sync_fallbacks < 1 {
            std::thread::yield_now();
        }
        disk.release();
        evictor.join().unwrap().unwrap();
        pool.flush_all().unwrap();
        let s = pool.stats();
        assert_eq!(s.wb_sync_fallbacks, 1, "exactly one eviction fell back: {s:?}");
        assert_eq!(s.wb_enqueued, 1, "the fallback must not also enqueue");
        let mut raw = Page::new(256);
        disk.inner.read(b, &mut raw).unwrap();
        assert_eq!(raw.bytes()[0], 2, "the fallback write landed");
        pool.reset_stats();
        assert_eq!(pool.stats().wb_sync_fallbacks, 0, "reset covers the new counter");
    }

    #[test]
    fn cache_writes_are_lost_on_eviction() {
        // The paper's key semantics: non-dirtying writes vanish when the
        // frame is reclaimed, so index-cache stores never cost I/O.
        let (pool, _) = pool(2);
        let a = pool.new_page().unwrap();
        pool.with_page_cache_write(a, |p| p.bytes_mut()[0] = 99).unwrap().unwrap();
        assert_eq!(pool.with_page(a, |p| p.bytes()[0]).unwrap(), 99);
        for _ in 0..4 {
            let x = pool.new_page().unwrap();
            pool.with_page(x, |_| ()).unwrap();
        }
        let v = pool.with_page(a, |p| p.bytes()[0]).unwrap();
        assert_eq!(v, 0, "non-dirty write must be dropped on eviction");
        assert_eq!(pool.stats().writebacks, 0);
    }

    #[test]
    fn mixed_dirty_then_cache_write_is_durable_for_dirty_part() {
        let (pool, _) = pool(2);
        let a = pool.new_page().unwrap();
        pool.with_page_mut(a, |p| p.bytes_mut()[0] = 1).unwrap();
        pool.with_page_cache_write(a, |p| p.bytes_mut()[1] = 2).unwrap().unwrap();
        // Cache write happened after the dirtying write while still
        // resident, so it piggybacks on the dirty flag — both persist.
        // (This mirrors real systems: non-dirtying writes make no
        // guarantee either way; they only promise not to *add* I/O.)
        for _ in 0..4 {
            let x = pool.new_page().unwrap();
            pool.with_page(x, |_| ()).unwrap();
        }
        assert_eq!(pool.with_page(a, |p| p.bytes()[0]).unwrap(), 1);
    }

    #[test]
    fn hit_and_miss_counters() {
        let (pool, _) = pool(2);
        let a = pool.new_page().unwrap();
        pool.with_page(a, |_| ()).unwrap(); // miss
        pool.with_page(a, |_| ()).unwrap(); // hit
        pool.with_page(a, |_| ()).unwrap(); // hit
        let s = pool.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 2);
        assert_eq!(s.faults, 1, "an uncontended miss is one started fault");
        assert_eq!(s.fault_joins, 0);
        assert!((s.hit_rate() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn evict_page_forces_out() {
        let (pool, _) = pool(4);
        let a = pool.new_page().unwrap();
        pool.with_page(a, |_| ()).unwrap();
        assert!(pool.contains(a));
        pool.evict_page(a).unwrap();
        assert!(!pool.contains(a));
        // evicting a non-resident page is a no-op
        pool.evict_page(a).unwrap();
    }

    #[test]
    fn pool_survives_working_set_larger_than_capacity() {
        let (pool, _) = pool(3);
        let ids: Vec<_> = (0..20).map(|_| pool.new_page().unwrap()).collect();
        for (i, id) in ids.iter().enumerate() {
            pool.with_page_mut(*id, |p| p.bytes_mut()[0] = i as u8).unwrap();
        }
        for (i, id) in ids.iter().enumerate() {
            let v = pool.with_page(*id, |p| p.bytes()[0]).unwrap();
            assert_eq!(v, i as u8);
        }
    }

    #[test]
    fn flush_all_persists_dirty_pages() {
        let (pool, disk) = pool(4);
        let a = pool.new_page().unwrap();
        pool.with_page_mut(a, |p| p.bytes_mut()[5] = 55).unwrap();
        pool.flush_all().unwrap();
        let mut raw = Page::new(256);
        disk.read(a, &mut raw).unwrap();
        assert_eq!(raw.bytes()[5], 55);
    }

    #[test]
    fn concurrent_access_is_safe() {
        let (pool, _) = pool(8);
        let ids: Vec<_> = (0..8).map(|_| pool.new_page().unwrap()).collect();
        let mut handles = Vec::new();
        for t in 0..4 {
            let pool = Arc::clone(&pool);
            let ids = ids.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..500 {
                    let id = ids[(t * 3 + i) % ids.len()];
                    if i % 3 == 0 {
                        pool.with_page_mut(id, |p| p.bytes_mut()[t] = p.bytes()[t].wrapping_add(1))
                            .unwrap();
                    } else {
                        pool.with_page(id, |p| p.bytes()[t]).unwrap();
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn try_cache_write_gives_up_under_contention() {
        use std::sync::mpsc;
        let (pool, _) = pool(4);
        let id = pool.new_page().unwrap();
        let (started_tx, started_rx) = mpsc::channel();
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let p2 = Arc::clone(&pool);
        let holder = std::thread::spawn(move || {
            p2.with_page_mut(id, |_| {
                started_tx.send(()).unwrap();
                release_rx.recv().unwrap();
            })
            .unwrap();
        });
        started_rx.recv().unwrap();
        // Frame write-latch is held by the other thread: cache write skips.
        let r = pool.with_page_cache_write(id, |p| p.bytes_mut()[0] = 1).unwrap();
        assert!(r.is_none(), "cache write should give up under contention");
        release_tx.send(()).unwrap();
        holder.join().unwrap();
    }

    // -----------------------------------------------------------------
    // Sharding
    // -----------------------------------------------------------------

    #[test]
    fn default_shard_count_scales_with_capacity() {
        let (small, _) = pool(4);
        assert_eq!(small.shards(), 1, "tiny pools stay single-shard");
        let (mid, _) = pool(32);
        assert_eq!(mid.shards(), 2);
        let (big, _) = pool(1024);
        assert_eq!(big.shards(), DEFAULT_POOL_SHARDS);
        assert_eq!(big.capacity(), 1024);
    }

    #[test]
    fn explicit_shard_count_is_honored_and_clamped() {
        let disk: Arc<dyn DiskManager> = Arc::new(InMemoryDisk::new(256));
        let p = BufferPool::new_sharded(Arc::clone(&disk), 64, 4);
        assert_eq!(p.shards(), 4);
        assert_eq!(p.capacity(), 64);
        let p = BufferPool::new_sharded(Arc::clone(&disk), 3, 100);
        assert_eq!(p.shards(), 3, "shards clamp to capacity");
        assert_eq!(p.capacity(), 3);
        let p = BufferPool::new_sharded(disk, 16, 0);
        assert_eq!(p.shards(), 1, "zero shards clamps to one");
    }

    #[test]
    fn uneven_capacity_distributes_all_frames() {
        let disk: Arc<dyn DiskManager> = Arc::new(InMemoryDisk::new(256));
        let p = BufferPool::new_sharded(disk, 13, 4);
        assert_eq!(p.shards(), 4);
        assert_eq!(p.capacity(), 13, "every frame must land in some shard");
    }

    #[test]
    fn sharded_pool_full_workout_matches_disk_truth() {
        // Working set ≫ capacity on a many-sharded pool: every page must
        // still read back its own bytes through eviction and reload.
        let disk: Arc<dyn DiskManager> = Arc::new(InMemoryDisk::new(256));
        let pool = Arc::new(BufferPool::new_sharded(disk, 8, 4));
        let ids: Vec<_> = (0..64).map(|_| pool.new_page().unwrap()).collect();
        for (i, id) in ids.iter().enumerate() {
            pool.with_page_mut(*id, |p| p.bytes_mut()[3] = i as u8).unwrap();
        }
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(pool.with_page(*id, |p| p.bytes()[3]).unwrap(), i as u8);
        }
        let s = pool.stats();
        assert!(s.misses >= 64, "first touch of each page must miss");
        assert!(s.evictions > 0);
    }

    #[test]
    fn stats_aggregate_across_shards() {
        let disk: Arc<dyn DiskManager> = Arc::new(InMemoryDisk::new(256));
        let pool = Arc::new(BufferPool::new_sharded(disk, 16, 4));
        let ids: Vec<_> = (0..16).map(|_| pool.new_page().unwrap()).collect();
        for id in &ids {
            pool.with_page(*id, |_| ()).unwrap(); // 16 misses
        }
        for id in &ids {
            pool.with_page(*id, |_| ()).unwrap(); // 16 hits
        }
        let s = pool.stats();
        assert_eq!(s.misses, 16);
        assert_eq!(s.hits, 16);
        assert_eq!(s.faults, 16);
        pool.reset_stats();
        assert_eq!(pool.stats(), PoolStats::default());
    }

    #[test]
    fn shards_do_not_share_frames() {
        // A page storm on one shard must not evict the other shard's
        // residents: page ids congruent mod 2 stay in their stripe.
        let disk: Arc<dyn DiskManager> = Arc::new(InMemoryDisk::new(256));
        let pool = Arc::new(BufferPool::new_sharded(disk, 4, 2));
        let ids: Vec<_> = (0..12).map(|_| pool.new_page().unwrap()).collect();
        // Pin nothing; touch one even page, then storm odd pages.
        pool.with_page(ids[0], |_| ()).unwrap();
        for id in ids.iter().filter(|id| id.0 % 2 == 1) {
            pool.with_page(*id, |_| ()).unwrap();
        }
        assert!(pool.contains(ids[0]), "odd-page storm evicted an even-shard resident");
    }

    #[test]
    fn failed_read_leaves_pool_consistent() {
        use crate::stats::IoStats;
        use std::sync::atomic::AtomicBool;

        /// Disk whose reads can be switched to fail, for error-path tests.
        struct FlakyDisk {
            inner: InMemoryDisk,
            fail_reads: AtomicBool,
        }
        impl DiskManager for FlakyDisk {
            fn page_size(&self) -> usize {
                self.inner.page_size()
            }
            fn allocate(&self) -> Result<PageId> {
                self.inner.allocate()
            }
            fn read(&self, id: PageId, buf: &mut Page) -> Result<()> {
                if self.fail_reads.load(Ordering::Relaxed) {
                    return Err(StorageError::Io("injected read failure".into()));
                }
                self.inner.read(id, buf)
            }
            fn write(&self, id: PageId, page: &Page) -> Result<()> {
                self.inner.write(id, page)
            }
            fn num_pages(&self) -> u64 {
                self.inner.num_pages()
            }
            fn stats(&self) -> IoStats {
                self.inner.stats()
            }
            fn reset_stats(&self) {
                self.inner.reset_stats()
            }
        }

        let disk = Arc::new(FlakyDisk {
            inner: InMemoryDisk::new(256),
            fail_reads: AtomicBool::new(false),
        });
        let pool = BufferPool::new_sharded(Arc::clone(&disk) as Arc<dyn DiskManager>, 2, 1);
        // Fill both frames, one dirty.
        let a = pool.new_page().unwrap();
        let b = pool.new_page().unwrap();
        let c = pool.new_page().unwrap();
        pool.with_page_mut(a, |p| p.bytes_mut()[0] = 11).unwrap();
        pool.with_page(b, |_| ()).unwrap();
        // Inject failures: faulting `c` must error without corrupting
        // the map — and must not lose `a`'s dirty data.
        disk.fail_reads.store(true, Ordering::Relaxed);
        assert!(pool.with_page(c, |_| ()).is_err());
        disk.fail_reads.store(false, Ordering::Relaxed);
        // Everything still readable with the right contents.
        assert_eq!(pool.with_page(a, |p| p.bytes()[0]).unwrap(), 11);
        pool.with_page(b, |_| ()).unwrap();
        pool.with_page(c, |_| ()).unwrap();
        assert_eq!(pool.with_page(a, |p| p.bytes()[0]).unwrap(), 11, "dirty page lost");
    }

    #[test]
    fn batch_reads_match_point_reads_and_group_lock_work() {
        let disk: Arc<dyn DiskManager> = Arc::new(InMemoryDisk::new(256));
        let pool = Arc::new(BufferPool::new_sharded(disk, 32, 4));
        let ids: Vec<_> = (0..24).map(|_| pool.new_page().unwrap()).collect();
        for (i, id) in ids.iter().enumerate() {
            pool.with_page_mut(*id, |p| p.bytes_mut()[0] = i as u8).unwrap();
        }
        // Mixed residency: evict half, then batch-read everything plus
        // duplicates, out of order.
        for id in ids.iter().step_by(2) {
            pool.evict_page(*id).unwrap();
        }
        let mut asked: Vec<PageId> = ids.iter().rev().copied().collect();
        asked.push(ids[5]);
        asked.push(ids[5]);
        let got = pool.with_page_batch(&asked, |_, p| p.bytes()[0]).unwrap();
        for (pos, id) in asked.iter().enumerate() {
            let want = ids.iter().position(|x| x == id).unwrap() as u8;
            assert_eq!(got[pos], want, "position {pos}");
        }
        let s = pool.stats();
        assert_eq!(s.hits + s.misses - 24, asked.len() as u64, "every batch member counted");
    }

    #[test]
    fn batch_on_tiny_pool_behaves_like_point_calls() {
        // 2 frames, 1 shard: more batch members than frames must still
        // succeed (pins drain before misses fault).
        let disk: Arc<dyn DiskManager> = Arc::new(InMemoryDisk::new(256));
        let pool = BufferPool::new_sharded(disk, 2, 1);
        let ids: Vec<_> = (0..10).map(|_| pool.new_page().unwrap()).collect();
        for (i, id) in ids.iter().enumerate() {
            pool.with_page_mut(*id, |p| p.bytes_mut()[0] = i as u8).unwrap();
        }
        let got = pool.with_page_batch(&ids, |_, p| p.bytes()[0]).unwrap();
        assert_eq!(got, (0..10).map(|i| i as u8).collect::<Vec<_>>());
    }

    #[test]
    fn concurrent_threads_on_distinct_shards() {
        let disk: Arc<dyn DiskManager> = Arc::new(InMemoryDisk::new(256));
        let pool = Arc::new(BufferPool::new_sharded(disk, 64, 8));
        let ids: Vec<_> = (0..64).map(|_| pool.new_page().unwrap()).collect();
        let mut handles = Vec::new();
        for t in 0..8usize {
            let pool = Arc::clone(&pool);
            let ids = ids.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..2000usize {
                    let id = ids[(i * 7 + t * 13) % ids.len()];
                    if i % 5 == 0 {
                        pool.with_page_mut(id, |p| {
                            p.bytes_mut()[t] = p.bytes()[t].wrapping_add(1);
                        })
                        .unwrap();
                    } else {
                        pool.with_page(id, |p| p.bytes()[t]).unwrap();
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let s = pool.stats();
        assert_eq!(s.hits + s.misses, 8 * 2000);
        assert_eq!(s.misses, s.faults + s.fault_joins, "every miss loads or parks");
    }

    #[test]
    fn panicking_write_behind_flush_does_not_wedge_flush_all() {
        use crate::stats::IoStats;

        /// Disk whose next write panics (once), modeling a broken
        /// `DiskManager` implementation under the background flusher.
        struct PanicOnceDisk {
            inner: InMemoryDisk,
            panic_next: AtomicBool,
        }
        impl DiskManager for PanicOnceDisk {
            fn page_size(&self) -> usize {
                self.inner.page_size()
            }
            fn allocate(&self) -> Result<PageId> {
                self.inner.allocate()
            }
            fn read(&self, id: PageId, buf: &mut Page) -> Result<()> {
                self.inner.read(id, buf)
            }
            fn write(&self, id: PageId, page: &Page) -> Result<()> {
                if self.panic_next.swap(false, Ordering::Relaxed) {
                    panic!("injected write panic");
                }
                self.inner.write(id, page)
            }
            fn num_pages(&self) -> u64 {
                self.inner.num_pages()
            }
            fn stats(&self) -> IoStats {
                self.inner.stats()
            }
            fn reset_stats(&self) {
                self.inner.reset_stats()
            }
        }

        let disk = Arc::new(PanicOnceDisk {
            inner: InMemoryDisk::new(256),
            panic_next: AtomicBool::new(true),
        });
        let pool = BufferPool::with_options(Arc::clone(&disk) as Arc<dyn DiskManager>, 2, 1, 64, 0);
        let a = pool.new_page().unwrap();
        pool.with_page_mut(a, |p| p.bytes_mut()[0] = 5).unwrap();
        pool.evict_page(a).unwrap(); // enqueued; the flusher's write panics
        while disk.panic_next.load(Ordering::Relaxed) {
            std::thread::yield_now(); // let the flusher consume the panic
        }
        // Without the write-path unwind guard the slot would stay
        // marked in-flight forever and this drain would hang; with it
        // the slot parks as failed and flush_all retries synchronously.
        pool.flush_all().unwrap();
        let mut raw = Page::new(256);
        disk.inner.read(a, &mut raw).unwrap();
        assert_eq!(raw.bytes()[0], 5, "parked bytes survive the panic and flush");
        assert_eq!(pool.stats().wb_pending, 0);

        // The flusher thread must have survived the panic: a fresh
        // dirty eviction drains in the *background*, no flush_all.
        pool.with_page_mut(a, |p| p.bytes_mut()[0] = 6).unwrap();
        pool.evict_page(a).unwrap();
        while pool.stats().wb_pending > 0 {
            std::thread::yield_now();
        }
        disk.inner.read(a, &mut raw).unwrap();
        assert_eq!(raw.bytes()[0], 6, "write-behind still functions after the panic");
    }

    #[test]
    fn flush_barrier_holds_against_concurrent_dirty_evictions() {
        // Writes gated from the start, with attempt counting, so the
        // test can freeze the flusher mid-write and provably interleave
        // an eviction with an active flush barrier.
        let disk = Arc::new(GatedWriteDisk::new(256, true));
        let pool = Arc::new(BufferPool::with_options(
            Arc::clone(&disk) as Arc<dyn DiskManager>,
            4,
            1,
            64,
            0,
        ));
        let a = pool.new_page().unwrap();
        let b = pool.new_page().unwrap();
        pool.with_page_mut(a, |p| p.bytes_mut()[0] = 1).unwrap();
        pool.evict_page(a).unwrap(); // slot for `a`; flusher blocks writing it
        while disk.write_attempts.load(Ordering::Relaxed) < 1 {
            std::thread::yield_now();
        }
        pool.with_page_mut(b, |p| p.bytes_mut()[0] = 2).unwrap(); // resident dirty

        // flush_all enters its barrier, then parks in drain() behind
        // the flusher's gated write of `a`.
        let flusher = {
            let pool = Arc::clone(&pool);
            std::thread::spawn(move || pool.flush_all())
        };
        while pool.wb.as_ref().unwrap().state.lock().barriers == 0 {
            std::thread::yield_now();
        }

        // The race under test: a dirty eviction *during* the barrier
        // must write synchronously — a fresh queue slot here would
        // slip behind the drain and break the durability promise.
        let evictor = {
            let pool = Arc::clone(&pool);
            std::thread::spawn(move || pool.evict_page(b))
        };
        while disk.write_attempts.load(Ordering::Relaxed) < 2 {
            std::thread::yield_now();
        }
        assert_eq!(pool.stats().wb_enqueued, 1, "barrier-time eviction must not enqueue");

        disk.release();
        flusher.join().unwrap().unwrap();
        evictor.join().unwrap().unwrap();

        // Everything dirty at (or during) the barrier is on the disk.
        let mut raw = Page::new(256);
        disk.inner.read(a, &mut raw).unwrap();
        assert_eq!(raw.bytes()[0], 1);
        disk.inner.read(b, &mut raw).unwrap();
        assert_eq!(raw.bytes()[0], 2);
        assert_eq!(pool.stats().wb_pending, 0);
    }

    // -----------------------------------------------------------------
    // Compressed frame tier
    // -----------------------------------------------------------------

    /// Pool with the compressed tier on (write-behind off, so disk-read
    /// accounting in these tests is exact).
    fn cpool(cap: usize, budget: usize) -> (Arc<BufferPool>, Arc<InMemoryDisk>) {
        let disk = Arc::new(InMemoryDisk::new(256));
        let pool = Arc::new(BufferPool::with_options(
            Arc::clone(&disk) as Arc<dyn DiskManager>,
            cap,
            1,
            0,
            budget,
        ));
        (pool, disk)
    }

    #[test]
    fn demoted_page_refaults_without_a_disk_read() {
        let (pool, disk) = cpool(2, 4096);
        assert_eq!(pool.compressed_budget(), 4096);
        let a = pool.new_page().unwrap();
        pool.with_page_mut(a, |p| p.bytes_mut()[3] = 9).unwrap();
        pool.evict_page(a).unwrap();
        // The barrier drains the compressor, so the demotion is settled.
        pool.flush_all().unwrap();
        let s = pool.stats();
        assert_eq!(s.compressed_pages, 1, "demotion admitted");
        assert!(s.compressed_bytes > 0 && s.compressed_bytes < 256, "mostly-zero page shrank");
        assert!(s.compression_ratio() > 1.0);

        disk.reset_stats();
        assert_eq!(pool.with_page(a, |p| p.bytes()[3]).unwrap(), 9);
        let s = pool.stats();
        assert_eq!(disk.stats().reads, 0, "fault served by decompression, not the disk");
        assert_eq!(s.compressed_hits, 1);
        assert_eq!(s.compressed_pages, 0, "the entry was claimed by the fault");
    }

    #[test]
    fn budget_evicts_oldest_entries() {
        // Zero-ish 256-byte pages encode to ~25 bytes; a 60-byte budget
        // holds two, so the third admission evicts the oldest.
        let (pool, _) = cpool(2, 60);
        let ids: Vec<PageId> = (0..3).map(|_| pool.new_page().unwrap()).collect();
        for id in &ids {
            pool.with_page(*id, |_| ()).unwrap();
            pool.evict_page(*id).unwrap();
        }
        pool.flush_all().unwrap();
        let s = pool.stats();
        assert!(s.compressed_evictions >= 1, "third entry must push one out");
        assert!(s.compressed_bytes <= 60, "stored bytes respect the budget");
        assert_eq!(s.compressed_pages, 2);
    }

    #[test]
    fn zero_budget_disables_the_tier_exactly() {
        let (pool, disk) = cpool(2, 0);
        assert_eq!(pool.compressed_budget(), 0);
        pool.set_compression_gate(true); // must be a no-op
        let a = pool.new_page().unwrap();
        pool.with_page_mut(a, |p| p.bytes_mut()[0] = 5).unwrap();
        pool.evict_page(a).unwrap();
        pool.flush_all().unwrap();
        disk.reset_stats();
        assert_eq!(pool.with_page(a, |p| p.bytes()[0]).unwrap(), 5);
        assert_eq!(disk.stats().reads, 1, "re-fault reads the disk, as always");
        let s = pool.stats();
        assert_eq!(
            (s.compressed_hits, s.compressed_pages, s.compressed_bytes, s.compressed_ratio_den),
            (0, 0, 0, 0),
            "no tier counter may move with the tier disabled"
        );
    }

    #[test]
    fn poisoned_decompress_heals_on_retry() {
        let (pool, disk) = cpool(2, 4096);
        let a = pool.new_page().unwrap();
        pool.with_page_mut(a, |p| p.bytes_mut()[7] = 42).unwrap();
        pool.evict_page(a).unwrap();
        pool.flush_all().unwrap();
        // Corrupt the stored entry in place: the next fault's decode
        // must fail (poisoning that load), and because the claim already
        // removed the entry, the retry falls through to the disk.
        {
            let ct = pool.ct.as_ref().unwrap();
            let mut st = ct.state.lock();
            let enc = st.entries.get_mut(&a).expect("entry admitted");
            enc[0] ^= 0xFF; // break the codec magic
        }
        let err = pool.with_page(a, |_| ()).unwrap_err();
        assert!(format!("{err}").contains("decompress"), "fault surfaces the decode error: {err}");
        disk.reset_stats();
        assert_eq!(pool.with_page(a, |p| p.bytes()[7]).unwrap(), 42, "retry heals from disk");
        assert_eq!(disk.stats().reads, 1);
        assert_eq!(pool.stats().compressed_hits, 0, "a poisoned decode is not a hit");
    }

    #[test]
    fn publish_cancels_stale_demotion_jobs() {
        // Gate the compressor, evict (job queued, not yet compressed),
        // re-fault and re-dirty the page, then let the compressor run:
        // the job's token died at publish, so its stale snapshot must
        // not be admitted over the newer truth.
        let (pool, _) = cpool(2, 4096);
        let a = pool.new_page().unwrap();
        pool.with_page_mut(a, |p| p.bytes_mut()[0] = 1).unwrap();
        pool.set_compression_gate(true);
        pool.evict_page(a).unwrap();
        pool.with_page_mut(a, |p| p.bytes_mut()[0] = 2).unwrap();
        pool.set_compression_gate(false);
        pool.flush_all().unwrap();
        let s = pool.stats();
        assert_eq!(s.compressed_pages, 0, "cancelled job must not admit stale bytes");
        // And the tier still works afterwards: a fresh demotion of the
        // new bytes round-trips.
        pool.evict_page(a).unwrap();
        pool.flush_all().unwrap();
        assert_eq!(pool.stats().compressed_pages, 1);
        assert_eq!(pool.with_page(a, |p| p.bytes()[0]).unwrap(), 2);
    }

    #[test]
    fn incompressible_pages_are_stored_raw_not_inflated() {
        let (pool, _) = cpool(2, 4096);
        let a = pool.new_page().unwrap();
        // LCG noise fills the page; the codec's gate must fall back to
        // raw storage (256 + 12 header bytes), never more.
        pool.with_page_mut(a, |p| {
            let mut x = 0x243F_6A88_85A3_08D3u64;
            for b in p.bytes_mut() {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                *b = (x >> 56) as u8;
            }
        })
        .unwrap();
        pool.evict_page(a).unwrap();
        pool.flush_all().unwrap();
        let s = pool.stats();
        assert_eq!(s.compressed_pages, 1);
        assert_eq!(s.compressed_bytes, 256 + 12, "raw fallback pays only the header");
        assert!(s.compression_ratio() < 1.0, "honest ratio accounting for a raw entry");
    }

    #[test]
    fn runtime_compressed_budget_resize_evicts_to_fit() {
        // Three zero-ish entries (~25 stored bytes each) fit a 4 KiB
        // budget; shrinking to 60 bytes must evict down to two, and
        // growing back re-opens admission for future demotions.
        let (pool, _) = cpool(2, 4096);
        let ids: Vec<PageId> = (0..3).map(|_| pool.new_page().unwrap()).collect();
        for id in &ids {
            pool.with_page(*id, |_| ()).unwrap();
            pool.evict_page(*id).unwrap();
        }
        pool.flush_all().unwrap();
        assert_eq!(pool.stats().compressed_pages, 3);

        assert!(pool.set_compressed_budget(60), "tier present: resize applies");
        assert_eq!(pool.compressed_budget(), 60);
        let s = pool.stats();
        assert!(s.compressed_bytes <= 60, "shrink evicted down to the new budget");
        assert_eq!(s.compressed_pages, 2, "oldest entry went first");

        assert!(pool.set_compressed_budget(4096));
        let d = pool.new_page().unwrap();
        pool.with_page(d, |_| ()).unwrap();
        pool.evict_page(d).unwrap();
        pool.flush_all().unwrap();
        assert_eq!(pool.stats().compressed_pages, 3, "regrown budget admits again");

        let plain_disk = Arc::new(InMemoryDisk::new(256));
        let plain = BufferPool::new(plain_disk as Arc<dyn DiskManager>, 2);
        assert!(!plain.set_compressed_budget(1024), "no tier at construction: resize is a no-op");
        assert_eq!(plain.compressed_budget(), 0);
    }

    #[test]
    fn multiple_flusher_threads_drain_the_queue_correctly() {
        // Four drainers race over one queue while a 4-frame pool churns
        // 32 pages through repeated dirty evictions. The gen-stamped
        // `flushing` claim means a superseded write can never land over
        // a newer one, so the final disk image must equal the last
        // value written to every page.
        let disk = Arc::new(InMemoryDisk::new(256));
        let pool = BufferPool::with_pool_options(
            Arc::clone(&disk) as Arc<dyn DiskManager>,
            4,
            PoolOptions {
                shards: 1,
                write_behind: 8,
                flusher_threads: 4,
                compressed_budget_bytes: 0,
            },
        );
        assert_eq!(pool.flusher_threads(), 4);
        let ids: Vec<PageId> = (0..32).map(|_| pool.new_page().unwrap()).collect();
        for round in 0..=3u8 {
            for (i, id) in ids.iter().enumerate() {
                pool.with_page_mut(*id, |p| p.bytes_mut()[0] = (i as u8).wrapping_add(round))
                    .unwrap();
            }
        }
        pool.flush_all().unwrap();
        let mut buf = Page::new(256);
        for (i, id) in ids.iter().enumerate() {
            disk.read(*id, &mut buf).unwrap();
            assert_eq!(buf.bytes()[0], (i as u8).wrapping_add(3), "page {i} holds its last write");
        }
    }

    #[test]
    fn flush_all_sweep_does_not_hold_the_map_across_frame_latches() {
        // Regression for the CONCURRENCY.md sweep caveat: a flush
        // blocked behind a long page writer must not stall unrelated
        // pins on the same shard (the old sweep latched under the shard
        // map, so every pin/unpin queued behind the stuck writer).
        let disk = Arc::new(InMemoryDisk::new(256));
        let pool =
            Arc::new(BufferPool::new_sharded(Arc::clone(&disk) as Arc<dyn DiskManager>, 4, 1));
        let a = pool.new_page().unwrap();
        let b = pool.new_page().unwrap();
        pool.with_page_mut(b, |p| p.bytes_mut()[0] = 7).unwrap();

        let gate = Arc::new((Mutex::new(true), Condvar::new()));
        let entered = Arc::new(AtomicBool::new(false));
        let writer = {
            let (pool, gate, entered) =
                (Arc::clone(&pool), Arc::clone(&gate), Arc::clone(&entered));
            std::thread::spawn(move || {
                pool.with_page_mut(a, |p| {
                    p.bytes_mut()[0] = 9;
                    entered.store(true, Ordering::Release);
                    let mut held = gate.0.lock();
                    while *held {
                        gate.1.wait(&mut held);
                    }
                })
                .unwrap();
            })
        };
        while !entered.load(Ordering::Acquire) {
            std::thread::yield_now();
        }
        // Frame `a` (snapshot order: index 0) is dirty and write-latched,
        // so the sweep parks on its read latch with the map *dropped*.
        let flusher = {
            let pool = Arc::clone(&pool);
            std::thread::spawn(move || pool.flush_all().unwrap())
        };
        // An unrelated pin on the same shard must still go through
        // while the sweep is parked.
        let pinned = Arc::new(AtomicBool::new(false));
        let pin_thread = {
            let (pool, pinned) = (Arc::clone(&pool), Arc::clone(&pinned));
            std::thread::spawn(move || {
                assert_eq!(pool.with_page(b, |p| p.bytes()[0]).unwrap(), 7);
                pinned.store(true, Ordering::Release);
            })
        };
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while !pinned.load(Ordering::Acquire) {
            assert!(
                std::time::Instant::now() < deadline,
                "pin stalled behind the flush sweep: the map is being held across a frame latch"
            );
            std::thread::yield_now();
        }
        {
            let mut held = gate.0.lock();
            *held = false;
            gate.1.notify_all();
        }
        writer.join().unwrap();
        flusher.join().unwrap();
        pin_thread.join().unwrap();
        let mut buf = Page::new(256);
        disk.read(a, &mut buf).unwrap();
        assert_eq!(buf.bytes()[0], 9, "the sweep flushed the writer's bytes once it got the latch");
    }

    /// Writes `n` pages with recognizable content through one pool,
    /// flushes, and returns a **cold** pool over the same disk plus the
    /// page ids — the setup every batch-read test starts from.
    fn cold_pool(cap: usize, n: usize) -> (Arc<BufferPool>, Arc<InMemoryDisk>, Vec<PageId>) {
        let disk = Arc::new(InMemoryDisk::new(256));
        let warm = BufferPool::new(Arc::clone(&disk) as Arc<dyn DiskManager>, cap.max(n));
        let mut ids = Vec::new();
        for i in 0..n {
            let (id, ()) = warm.new_page_with(|p| p.bytes_mut()[0] = i as u8 + 1).unwrap();
            ids.push(id);
        }
        warm.flush_all().unwrap();
        drop(warm);
        let pool = Arc::new(BufferPool::new(Arc::clone(&disk) as Arc<dyn DiskManager>, cap));
        (pool, disk, ids)
    }

    #[test]
    fn prefetch_loads_in_one_batch_and_publishes_unpinned() {
        let (pool, disk, ids) = cold_pool(8, 4);
        disk.reset_stats();
        pool.prefetch(&ids);
        for &id in &ids {
            assert!(pool.contains(id), "prefetched page {id} should be resident");
        }
        assert_eq!(disk.stats().reads, 4, "per-page read accounting preserved");
        let s = pool.stats();
        assert_eq!(s.prefetch_issued, 4);
        assert_eq!(s.faults, 4, "prefetches run the full fault machinery");
        assert_eq!(s.read_batches, 1, "one read_many for the whole group");
        assert_eq!(s.read_pages, 4);
        assert_eq!(s.prefetch_hits, 0);
        // Unpinned: a forced eviction succeeds immediately.
        pool.evict_page(ids[0]).unwrap();
        assert_eq!(pool.stats().prefetch_wasted, 1, "evicted untouched = wasted speculation");
        // A demand touch settles the verdict the other way.
        let got = pool.with_page(ids[1], |p| p.bytes()[0]).unwrap();
        assert_eq!(got, 2);
        let s = pool.stats();
        assert_eq!(s.prefetch_hits, 1);
        assert_eq!(s.hits, 1, "the demand touch was an ordinary hit");
    }

    #[test]
    fn prefetch_skips_resident_and_loading_pages() {
        let (pool, disk, ids) = cold_pool(8, 3);
        pool.fault_many(&ids).unwrap();
        disk.reset_stats();
        pool.prefetch(&ids);
        assert_eq!(disk.stats().reads, 0, "nothing to do: all resident");
        assert_eq!(pool.stats().prefetch_issued, 0);
    }

    #[test]
    fn prefetched_frames_are_first_choice_victims() {
        // Four frames: three demand-paged, one speculative. The next
        // miss must reclaim the speculative one, not touch the working
        // set.
        let (pool, _disk, ids) = cold_pool(4, 5);
        let (hot, spec, fresh) = (&ids[0..3], ids[3], ids[4]);
        for &id in hot {
            pool.with_page(id, |_| ()).unwrap();
        }
        pool.prefetch(&[spec]);
        assert!(pool.contains(spec));
        pool.with_page(fresh, |_| ()).unwrap();
        assert!(!pool.contains(spec), "speculative frame must be the first victim");
        for &id in hot {
            assert!(pool.contains(id), "demand-paged working set survived");
        }
        assert_eq!(pool.stats().prefetch_wasted, 1);
    }

    #[test]
    fn fault_many_batches_reads_and_leaves_pages_resident() {
        let (pool, disk, ids) = cold_pool(8, 4);
        disk.reset_stats();
        pool.fault_many(&ids).unwrap();
        let s = pool.stats();
        assert_eq!(s.faults, 4);
        assert_eq!(s.read_batches, 1);
        assert_eq!(s.read_pages, 4);
        assert_eq!(s.prefetch_issued, 0, "demand faults are not speculation");
        for (i, &id) in ids.iter().enumerate() {
            assert!(pool.contains(id));
            assert_eq!(pool.with_page(id, |p| p.bytes()[0]).unwrap(), i as u8 + 1);
        }
        // No pin leaked: every page can be forced out.
        for &id in &ids {
            pool.evict_page(id).unwrap();
        }
        // A second fault_many over resident pages is all hits.
        pool.fault_many(&ids).unwrap();
        pool.reset_stats();
        pool.fault_many(&ids).unwrap();
        let s = pool.stats();
        assert_eq!(s.hits, 4);
        assert_eq!(s.read_batches, 0);
    }

    #[test]
    fn with_page_batch_faults_misses_in_one_read_batch() {
        let (pool, disk, ids) = cold_pool(8, 4);
        // Warm half the batch so the group mixes hits and misses.
        pool.with_page(ids[0], |_| ()).unwrap();
        pool.with_page(ids[2], |_| ()).unwrap();
        disk.reset_stats();
        pool.reset_stats();
        let got = pool.with_page_batch(&ids, |_, p| p.bytes()[0]).unwrap();
        assert_eq!(got, vec![1, 2, 3, 4]);
        let s = pool.stats();
        assert_eq!(s.hits, 2);
        assert_eq!(s.faults, 2);
        assert_eq!(s.read_batches, 1, "both misses rode one read_many");
        assert_eq!(s.read_pages, 2);
        assert_eq!(disk.stats().reads, 2);
    }

    #[test]
    fn with_page_batch_coalesces_misses_across_shards() {
        // 4 shards × 16 frames; pages 0..8 stripe over every shard, so
        // a per-shard fault pass would pay 4 read batches. The miss
        // pass must collect across shards: one read_many total (8 ≤
        // batch_chunk = 16/2, so the whole group is one chunk).
        let disk = Arc::new(InMemoryDisk::new(256));
        let warm = BufferPool::new(Arc::clone(&disk) as Arc<dyn DiskManager>, 64);
        let ids: Vec<PageId> = (0..8)
            .map(|i| warm.new_page_with(|p| p.bytes_mut()[0] = i as u8 + 1).unwrap().0)
            .collect();
        warm.flush_all().unwrap();
        drop(warm);
        let pool = BufferPool::new_sharded(Arc::clone(&disk) as Arc<dyn DiskManager>, 64, 4);
        assert!(
            (0..4).all(|s| ids.iter().any(|id| id.0 % 4 == s)),
            "test premise: the batch touches every shard"
        );
        disk.reset_stats();
        let got = pool.with_page_batch(&ids, |_, p| p.bytes()[0]).unwrap();
        assert_eq!(got, (1..=8).collect::<Vec<u8>>());
        let s = pool.stats();
        assert_eq!(s.faults, 8);
        assert_eq!(s.read_batches, 1, "cross-shard misses must share one read_many");
        assert_eq!(s.read_pages, 8);
    }
}
