//! Buffer pool: fixed set of frames over a [`DiskManager`], clock eviction.
//!
//! Two properties are load-bearing for the paper's index cache (§2.1.1):
//!
//! 1. **Non-dirtying writes.** [`BufferPool::with_page_cache_write`]
//!    mutates the in-memory frame *without* setting the dirty bit. If the
//!    frame is evicted, the modification is silently lost — which is
//!    exactly the contract index-cache stores require ("cache
//!    modifications do not dirty the page", so caching never adds I/O).
//! 2. **Try-latch access.** The same method gives up immediately if the
//!    frame latch is contended (§2.1.3: "we can give up a write operation
//!    if the latch is not immediately available").

use crate::disk::DiskManager;
use crate::error::{Result, StorageError};
use crate::page::{Page, PageId};
use crate::stats::PoolStats;
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

struct Frame {
    data: RwLock<Page>,
    pin: AtomicU32,
    dirty: AtomicBool,
    refbit: AtomicBool,
}

struct Inner {
    /// page id -> frame index
    table: HashMap<PageId, usize>,
    /// frame index -> resident page (None = free frame)
    resident: Vec<Option<PageId>>,
    clock_hand: usize,
}

/// Fixed-capacity page cache over a shared disk.
pub struct BufferPool {
    disk: Arc<dyn DiskManager>,
    frames: Vec<Arc<Frame>>,
    inner: Mutex<Inner>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    writebacks: AtomicU64,
}

impl BufferPool {
    /// Creates a pool of `capacity` frames over `disk`.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(disk: Arc<dyn DiskManager>, capacity: usize) -> Self {
        assert!(capacity > 0, "buffer pool needs at least one frame");
        let page_size = disk.page_size();
        let frames = (0..capacity)
            .map(|_| {
                Arc::new(Frame {
                    data: RwLock::new(Page::new(page_size)),
                    pin: AtomicU32::new(0),
                    dirty: AtomicBool::new(false),
                    refbit: AtomicBool::new(false),
                })
            })
            .collect();
        BufferPool {
            disk,
            frames,
            inner: Mutex::new(Inner {
                table: HashMap::new(),
                resident: vec![None; capacity],
                clock_hand: 0,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            writebacks: AtomicU64::new(0),
        }
    }

    /// Number of frames.
    pub fn capacity(&self) -> usize {
        self.frames.len()
    }

    /// The disk this pool fronts.
    pub fn disk(&self) -> &Arc<dyn DiskManager> {
        &self.disk
    }

    /// Allocates a fresh page on disk and returns its id (not yet resident).
    pub fn new_page(&self) -> Result<PageId> {
        self.disk.allocate()
    }

    /// Allocates a fresh page, loads it, and runs `init` on it (dirtying).
    pub fn new_page_with<R>(&self, init: impl FnOnce(&mut Page) -> R) -> Result<(PageId, R)> {
        let id = self.disk.allocate()?;
        let r = self.with_page_mut(id, init)?;
        Ok((id, r))
    }

    /// Runs `f` with shared access to page `id`, pinning it for the duration.
    pub fn with_page<R>(&self, id: PageId, f: impl FnOnce(&Page) -> R) -> Result<R> {
        let (idx, frame) = self.pin(id)?;
        let out = {
            let guard = frame.data.read();
            f(&guard)
        };
        self.unpin(idx);
        Ok(out)
    }

    /// Runs `f` with exclusive access to page `id`, marking the frame dirty.
    pub fn with_page_mut<R>(&self, id: PageId, f: impl FnOnce(&mut Page) -> R) -> Result<R> {
        let (idx, frame) = self.pin(id)?;
        let out = {
            let mut guard = frame.data.write();
            frame.dirty.store(true, Ordering::Release);
            f(&mut guard)
        };
        self.unpin(idx);
        Ok(out)
    }

    /// Runs `f` with exclusive access *without* dirtying the frame, and
    /// only if the frame latch is immediately available.
    ///
    /// Returns `Ok(None)` when the latch was contended — the caller is
    /// expected to simply skip its (cache) write, never to retry in a loop.
    pub fn with_page_cache_write<R>(
        &self,
        id: PageId,
        f: impl FnOnce(&mut Page) -> R,
    ) -> Result<Option<R>> {
        let (idx, frame) = self.pin(id)?;
        let out = frame.data.try_write().map(|mut guard| f(&mut guard));
        self.unpin(idx);
        Ok(out)
    }

    /// True if page `id` is currently resident.
    pub fn contains(&self, id: PageId) -> bool {
        self.inner.lock().table.contains_key(&id)
    }

    /// Forces page `id` out of the pool (writing it back iff dirty).
    ///
    /// Used by tests and harnesses to simulate memory pressure; a no-op if
    /// the page is not resident. Fails if the page is pinned.
    pub fn evict_page(&self, id: PageId) -> Result<()> {
        let mut inner = self.inner.lock();
        let Some(&idx) = inner.table.get(&id) else { return Ok(()) };
        let frame = &self.frames[idx];
        if frame.pin.load(Ordering::Acquire) != 0 {
            return Err(StorageError::BufferPoolExhausted);
        }
        self.write_back_if_dirty(idx, id)?;
        inner.table.remove(&id);
        inner.resident[idx] = None;
        self.evictions.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Writes back every dirty resident page.
    pub fn flush_all(&self) -> Result<()> {
        let inner = self.inner.lock();
        for (idx, res) in inner.resident.iter().enumerate() {
            if let Some(pid) = res {
                self.write_back_if_dirty(idx, *pid)?;
            }
        }
        Ok(())
    }

    /// Hit/miss/eviction counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            writebacks: self.writebacks.load(Ordering::Relaxed),
        }
    }

    /// Zeroes the counters.
    pub fn reset_stats(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
        self.writebacks.store(0, Ordering::Relaxed);
    }

    fn write_back_if_dirty(&self, idx: usize, pid: PageId) -> Result<()> {
        let frame = &self.frames[idx];
        if frame.dirty.swap(false, Ordering::AcqRel) {
            let guard = frame.data.read();
            self.disk.write(pid, &guard)?;
            self.writebacks.fetch_add(1, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Pins `id` into a frame, loading it from disk on a miss.
    fn pin(&self, id: PageId) -> Result<(usize, Arc<Frame>)> {
        let mut inner = self.inner.lock();
        if let Some(&idx) = inner.table.get(&id) {
            let frame = &self.frames[idx];
            frame.pin.fetch_add(1, Ordering::AcqRel);
            frame.refbit.store(true, Ordering::Relaxed);
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok((idx, Arc::clone(frame)));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let idx = self.find_victim(&mut inner)?;
        if let Some(old) = inner.resident[idx] {
            self.write_back_if_dirty(idx, old)?;
            inner.table.remove(&old);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        let frame = &self.frames[idx];
        {
            let mut guard = frame.data.write();
            self.disk.read(id, &mut guard)?;
            frame.dirty.store(false, Ordering::Release);
        }
        inner.resident[idx] = Some(id);
        inner.table.insert(id, idx);
        frame.pin.store(1, Ordering::Release);
        frame.refbit.store(true, Ordering::Relaxed);
        Ok((idx, Arc::clone(frame)))
    }

    fn unpin(&self, idx: usize) {
        self.frames[idx].pin.fetch_sub(1, Ordering::AcqRel);
    }

    /// Clock (second-chance) victim selection over unpinned frames.
    fn find_victim(&self, inner: &mut Inner) -> Result<usize> {
        // Prefer a free frame.
        if let Some(idx) = inner.resident.iter().position(Option::is_none) {
            return Ok(idx);
        }
        let n = self.frames.len();
        // Two sweeps: the first clears reference bits, the second takes
        // the first unpinned frame. 2n+1 steps bound the scan.
        for _ in 0..(2 * n + 1) {
            let idx = inner.clock_hand;
            inner.clock_hand = (inner.clock_hand + 1) % n;
            let frame = &self.frames[idx];
            if frame.pin.load(Ordering::Acquire) != 0 {
                continue;
            }
            if frame.refbit.swap(false, Ordering::Relaxed) {
                continue;
            }
            return Ok(idx);
        }
        Err(StorageError::BufferPoolExhausted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::InMemoryDisk;

    fn pool(cap: usize) -> (Arc<BufferPool>, Arc<InMemoryDisk>) {
        let disk = Arc::new(InMemoryDisk::new(256));
        let pool = Arc::new(BufferPool::new(Arc::clone(&disk) as Arc<dyn DiskManager>, cap));
        (pool, disk)
    }

    #[test]
    fn read_your_writes() {
        let (pool, _) = pool(4);
        let id = pool.new_page().unwrap();
        pool.with_page_mut(id, |p| p.bytes_mut()[0] = 42).unwrap();
        let v = pool.with_page(id, |p| p.bytes()[0]).unwrap();
        assert_eq!(v, 42);
    }

    #[test]
    fn dirty_pages_survive_eviction() {
        let (pool, _) = pool(2);
        let a = pool.new_page().unwrap();
        pool.with_page_mut(a, |p| p.bytes_mut()[0] = 7).unwrap();
        // Evict `a` by touching other pages.
        for _ in 0..4 {
            let x = pool.new_page().unwrap();
            pool.with_page(x, |_| ()).unwrap();
        }
        assert!(!pool.contains(a));
        let v = pool.with_page(a, |p| p.bytes()[0]).unwrap();
        assert_eq!(v, 7, "dirty page must be written back before eviction");
        assert!(pool.stats().writebacks >= 1);
    }

    #[test]
    fn cache_writes_are_lost_on_eviction() {
        // The paper's key semantics: non-dirtying writes vanish when the
        // frame is reclaimed, so index-cache stores never cost I/O.
        let (pool, _) = pool(2);
        let a = pool.new_page().unwrap();
        pool.with_page_cache_write(a, |p| p.bytes_mut()[0] = 99).unwrap().unwrap();
        assert_eq!(pool.with_page(a, |p| p.bytes()[0]).unwrap(), 99);
        for _ in 0..4 {
            let x = pool.new_page().unwrap();
            pool.with_page(x, |_| ()).unwrap();
        }
        let v = pool.with_page(a, |p| p.bytes()[0]).unwrap();
        assert_eq!(v, 0, "non-dirty write must be dropped on eviction");
        assert_eq!(pool.stats().writebacks, 0);
    }

    #[test]
    fn mixed_dirty_then_cache_write_is_durable_for_dirty_part() {
        let (pool, _) = pool(2);
        let a = pool.new_page().unwrap();
        pool.with_page_mut(a, |p| p.bytes_mut()[0] = 1).unwrap();
        pool.with_page_cache_write(a, |p| p.bytes_mut()[1] = 2).unwrap().unwrap();
        // Cache write happened after the dirtying write while still
        // resident, so it piggybacks on the dirty flag — both persist.
        // (This mirrors real systems: non-dirtying writes make no
        // guarantee either way; they only promise not to *add* I/O.)
        for _ in 0..4 {
            let x = pool.new_page().unwrap();
            pool.with_page(x, |_| ()).unwrap();
        }
        assert_eq!(pool.with_page(a, |p| p.bytes()[0]).unwrap(), 1);
    }

    #[test]
    fn hit_and_miss_counters() {
        let (pool, _) = pool(2);
        let a = pool.new_page().unwrap();
        pool.with_page(a, |_| ()).unwrap(); // miss
        pool.with_page(a, |_| ()).unwrap(); // hit
        pool.with_page(a, |_| ()).unwrap(); // hit
        let s = pool.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 2);
        assert!((s.hit_rate() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn evict_page_forces_out() {
        let (pool, _) = pool(4);
        let a = pool.new_page().unwrap();
        pool.with_page(a, |_| ()).unwrap();
        assert!(pool.contains(a));
        pool.evict_page(a).unwrap();
        assert!(!pool.contains(a));
        // evicting a non-resident page is a no-op
        pool.evict_page(a).unwrap();
    }

    #[test]
    fn pool_survives_working_set_larger_than_capacity() {
        let (pool, _) = pool(3);
        let ids: Vec<_> = (0..20).map(|_| pool.new_page().unwrap()).collect();
        for (i, id) in ids.iter().enumerate() {
            pool.with_page_mut(*id, |p| p.bytes_mut()[0] = i as u8).unwrap();
        }
        for (i, id) in ids.iter().enumerate() {
            let v = pool.with_page(*id, |p| p.bytes()[0]).unwrap();
            assert_eq!(v, i as u8);
        }
    }

    #[test]
    fn flush_all_persists_dirty_pages() {
        let (pool, disk) = pool(4);
        let a = pool.new_page().unwrap();
        pool.with_page_mut(a, |p| p.bytes_mut()[5] = 55).unwrap();
        pool.flush_all().unwrap();
        let mut raw = Page::new(256);
        disk.read(a, &mut raw).unwrap();
        assert_eq!(raw.bytes()[5], 55);
    }

    #[test]
    fn concurrent_access_is_safe() {
        let (pool, _) = pool(8);
        let ids: Vec<_> = (0..8).map(|_| pool.new_page().unwrap()).collect();
        let mut handles = Vec::new();
        for t in 0..4 {
            let pool = Arc::clone(&pool);
            let ids = ids.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..500 {
                    let id = ids[(t * 3 + i) % ids.len()];
                    if i % 3 == 0 {
                        pool.with_page_mut(id, |p| {
                            p.bytes_mut()[t] = p.bytes()[t].wrapping_add(1)
                        })
                        .unwrap();
                    } else {
                        pool.with_page(id, |p| p.bytes()[t]).unwrap();
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn try_cache_write_gives_up_under_contention() {
        use std::sync::mpsc;
        let (pool, _) = pool(4);
        let id = pool.new_page().unwrap();
        let (started_tx, started_rx) = mpsc::channel();
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let p2 = Arc::clone(&pool);
        let holder = std::thread::spawn(move || {
            p2.with_page_mut(id, |_| {
                started_tx.send(()).unwrap();
                release_rx.recv().unwrap();
            })
            .unwrap();
        });
        started_rx.recv().unwrap();
        // Frame write-latch is held by the other thread: cache write skips.
        let r = pool.with_page_cache_write(id, |p| p.bytes_mut()[0] = 1).unwrap();
        assert!(r.is_none(), "cache write should give up under contention");
        release_tx.send(()).unwrap();
        holder.join().unwrap();
    }
}
