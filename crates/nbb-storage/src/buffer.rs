//! Buffer pool: fixed set of frames over a [`DiskManager`], split into
//! lock-striped shards with per-shard clock eviction.
//!
//! Two properties are load-bearing for the paper's index cache (§2.1.1):
//!
//! 1. **Non-dirtying writes.** [`BufferPool::with_page_cache_write`]
//!    mutates the in-memory frame *without* setting the dirty bit. If the
//!    frame is evicted, the modification is silently lost — which is
//!    exactly the contract index-cache stores require ("cache
//!    modifications do not dirty the page", so caching never adds I/O).
//! 2. **Try-latch access.** The same method gives up immediately if the
//!    frame latch is contended (§2.1.3: "we can give up a write operation
//!    if the latch is not immediately available").
//!
//! # Sharding
//!
//! The pool is partitioned into `shards` independent stripes, each with
//! its own frame table, free list, clock hand, and statistics. A page id
//! maps to exactly one shard (`page_id % shards`), so concurrent
//! accesses to distinct pages contend only when they collide on a
//! stripe — the §2 index-cache read path scales with readers instead of
//! funneling through one global mutex. Sequential page ids stripe
//! round-robin, which spreads both heap scans and B+Tree levels evenly.
//!
//! Frames are divided as evenly as possible across shards, and a shard
//! can only evict among its own frames. [`BufferPool::new`] therefore
//! caps the default shard count so each shard keeps at least
//! [`MIN_FRAMES_PER_SHARD`] frames: tiny pools (as used by eviction
//! tests and memory-pressure harnesses) behave exactly like the old
//! single-mutex pool, while production-sized pools get
//! [`DEFAULT_POOL_SHARDS`] stripes. [`BufferPool::new_sharded`] gives
//! callers (benches, experiments) exact control.

use crate::disk::DiskManager;
use crate::error::{Result, StorageError};
use crate::page::{Page, PageId};
use crate::stats::PoolStats;
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

/// Default shard count for pools large enough to support it.
pub const DEFAULT_POOL_SHARDS: usize = 8;

/// Minimum frames per shard before [`BufferPool::new`] reduces the
/// default shard count. Keeps clock eviction meaningful (a one-frame
/// shard degenerates to direct replacement) and leaves headroom for
/// nested pins of pages that happen to collide on a shard.
pub const MIN_FRAMES_PER_SHARD: usize = 16;

struct Frame {
    data: RwLock<Page>,
    pin: AtomicU32,
    dirty: AtomicBool,
    refbit: AtomicBool,
}

/// Mutable residency state of one shard, behind the shard's mutex.
struct ShardMap {
    /// page id -> local frame index
    table: HashMap<PageId, usize>,
    /// local frame index -> resident page (None = free frame)
    resident: Vec<Option<PageId>>,
    /// Stack of free local frame indexes (avoids O(n) scans on miss).
    free: Vec<usize>,
    clock_hand: usize,
}

/// Per-shard counters. Relaxed atomics on their own cache line so the
/// hot path never contends with stats collection or a neighbor shard.
#[repr(align(64))]
#[derive(Default)]
struct ShardStats {
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    writebacks: AtomicU64,
}

struct Shard {
    frames: Vec<Arc<Frame>>,
    map: Mutex<ShardMap>,
    stats: ShardStats,
}

/// Fixed-capacity page cache over a shared disk, striped into shards.
pub struct BufferPool {
    disk: Arc<dyn DiskManager>,
    shards: Box<[Shard]>,
}

impl BufferPool {
    /// Creates a pool of `capacity` frames over `disk` with an
    /// automatically sized shard count: [`DEFAULT_POOL_SHARDS`], reduced
    /// so every shard keeps at least [`MIN_FRAMES_PER_SHARD`] frames
    /// (small pools fall back to a single shard).
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(disk: Arc<dyn DiskManager>, capacity: usize) -> Self {
        let shards = clamp_shards(capacity, DEFAULT_POOL_SHARDS);
        Self::new_sharded(disk, capacity, shards)
    }

    /// Creates a pool of `capacity` frames striped into exactly `shards`
    /// shards (clamped to `[1, capacity]`). Frames are distributed as
    /// evenly as possible; a shard only evicts among its own frames, so
    /// very small per-shard frame counts trade eviction quality for
    /// parallelism — benches use this to measure that trade.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new_sharded(disk: Arc<dyn DiskManager>, capacity: usize, shards: usize) -> Self {
        assert!(capacity > 0, "buffer pool needs at least one frame");
        let nshards = shards.clamp(1, capacity);
        let page_size = disk.page_size();
        let shards = (0..nshards)
            .map(|i| {
                let n = capacity / nshards + usize::from(i < capacity % nshards);
                let frames = (0..n)
                    .map(|_| {
                        Arc::new(Frame {
                            data: RwLock::new(Page::new(page_size)),
                            pin: AtomicU32::new(0),
                            dirty: AtomicBool::new(false),
                            refbit: AtomicBool::new(false),
                        })
                    })
                    .collect();
                Shard {
                    frames,
                    map: Mutex::new(ShardMap {
                        table: HashMap::new(),
                        resident: vec![None; n],
                        // Pop order: lowest index first, matching the old
                        // pool's first-free-frame scan.
                        free: (0..n).rev().collect(),
                        clock_hand: 0,
                    }),
                    stats: ShardStats::default(),
                }
            })
            .collect();
        BufferPool { disk, shards }
    }

    /// Shard owning `id`.
    #[inline]
    fn shard_of(&self, id: PageId) -> &Shard {
        &self.shards[(id.0 % self.shards.len() as u64) as usize]
    }

    /// Number of frames across all shards.
    pub fn capacity(&self) -> usize {
        self.shards.iter().map(|s| s.frames.len()).sum()
    }

    /// Number of lock-striped shards (≥ 1).
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The disk this pool fronts.
    pub fn disk(&self) -> &Arc<dyn DiskManager> {
        &self.disk
    }

    /// Allocates a fresh page on disk and returns its id (not yet resident).
    pub fn new_page(&self) -> Result<PageId> {
        self.disk.allocate()
    }

    /// Allocates a fresh page, loads it, and runs `init` on it (dirtying).
    pub fn new_page_with<R>(&self, init: impl FnOnce(&mut Page) -> R) -> Result<(PageId, R)> {
        let id = self.disk.allocate()?;
        let r = self.with_page_mut(id, init)?;
        Ok((id, r))
    }

    /// Runs `f` with shared access to page `id`, pinning it for the duration.
    pub fn with_page<R>(&self, id: PageId, f: impl FnOnce(&Page) -> R) -> Result<R> {
        let frame = self.pin(id)?;
        let out = {
            let guard = frame.data.read();
            f(&guard)
        };
        Self::unpin(&frame);
        Ok(out)
    }

    /// Runs `f` with exclusive access to page `id`, marking the frame dirty.
    pub fn with_page_mut<R>(&self, id: PageId, f: impl FnOnce(&mut Page) -> R) -> Result<R> {
        let frame = self.pin(id)?;
        let out = {
            let mut guard = frame.data.write();
            frame.dirty.store(true, Ordering::Release);
            f(&mut guard)
        };
        Self::unpin(&frame);
        Ok(out)
    }

    /// Runs `f` with shared access to each page in `ids`, amortizing
    /// lock acquisitions across the batch: ids are grouped per shard and
    /// every resident member of a group is pinned under **one** shard
    /// map lock, instead of one acquisition per page as N
    /// [`BufferPool::with_page`] calls would take. Non-resident pages
    /// fall back to the ordinary miss path one at a time (each may
    /// evict, which needs the map lock anyway).
    ///
    /// `f` receives `(position_in_ids, &Page)` and may be called in any
    /// order; the returned vector is indexed like `ids`. Duplicate ids
    /// are pinned once per occurrence and are safe.
    ///
    /// Hit/miss counters advance exactly as they would for point calls.
    pub fn with_page_batch<R>(
        &self,
        ids: &[PageId],
        mut f: impl FnMut(usize, &Page) -> R,
    ) -> Result<Vec<R>> {
        let mut by_shard: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
        for (i, id) in ids.iter().enumerate() {
            by_shard[(id.0 % self.shards.len() as u64) as usize].push(i);
        }
        let mut out: Vec<Option<R>> = ids.iter().map(|_| None).collect();
        for (si, group) in by_shard.iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let shard = &self.shards[si];
            // Pin the group's resident pages in bounded chunks: one
            // map-lock acquisition pins up to half the shard's frames,
            // so a batch never holds enough simultaneous pins to starve
            // a concurrent faulter of victims (N point calls hold at
            // most one pin; the chunk bound keeps that property within
            // a factor the shard can always absorb).
            let chunk = (shard.frames.len() / 2).max(1);
            let mut pinned: Vec<(usize, Arc<Frame>)> = Vec::with_capacity(chunk);
            let mut missed: Vec<usize> = Vec::new();
            for part in group.chunks(chunk) {
                {
                    let map = shard.map.lock();
                    for &i in part {
                        if let Some(&idx) = map.table.get(&ids[i]) {
                            let frame = &shard.frames[idx];
                            frame.pin.fetch_add(1, Ordering::AcqRel);
                            frame.refbit.store(true, Ordering::Relaxed);
                            shard.stats.hits.fetch_add(1, Ordering::Relaxed);
                            pinned.push((i, Arc::clone(frame)));
                        } else {
                            missed.push(i);
                        }
                    }
                }
                // Drain the hit pins before faulting the misses, so
                // batch pins never shrink the evictable set a miss may
                // need (a tiny single-shard pool must behave exactly
                // like N point calls would).
                for (i, frame) in pinned.drain(..) {
                    out[i] = Some(f(i, &frame.data.read()));
                    Self::unpin(&frame);
                }
            }
            for i in missed {
                let frame = self.pin(ids[i])?;
                out[i] = Some(f(i, &frame.data.read()));
                Self::unpin(&frame);
            }
        }
        Ok(out.into_iter().map(|r| r.expect("every id visited")).collect())
    }

    /// Runs `f` with exclusive access *without* dirtying the frame, and
    /// only if the frame latch is immediately available.
    ///
    /// Returns `Ok(None)` when the latch was contended — the caller is
    /// expected to simply skip its (cache) write, never to retry in a loop.
    pub fn with_page_cache_write<R>(
        &self,
        id: PageId,
        f: impl FnOnce(&mut Page) -> R,
    ) -> Result<Option<R>> {
        let frame = self.pin(id)?;
        let out = frame.data.try_write().map(|mut guard| f(&mut guard));
        Self::unpin(&frame);
        Ok(out)
    }

    /// True if page `id` is currently resident.
    pub fn contains(&self, id: PageId) -> bool {
        self.shard_of(id).map.lock().table.contains_key(&id)
    }

    /// Forces page `id` out of the pool (writing it back iff dirty).
    ///
    /// Used by tests and harnesses to simulate memory pressure; a no-op if
    /// the page is not resident. Fails if the page is pinned.
    pub fn evict_page(&self, id: PageId) -> Result<()> {
        let shard = self.shard_of(id);
        let mut map = shard.map.lock();
        let Some(&idx) = map.table.get(&id) else { return Ok(()) };
        let frame = &shard.frames[idx];
        if frame.pin.load(Ordering::Acquire) != 0 {
            return Err(StorageError::BufferPoolExhausted);
        }
        self.write_back_if_dirty(shard, frame, id)?;
        map.table.remove(&id);
        map.resident[idx] = None;
        map.free.push(idx);
        shard.stats.evictions.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Writes back every dirty resident page.
    pub fn flush_all(&self) -> Result<()> {
        for shard in self.shards.iter() {
            let map = shard.map.lock();
            for (idx, res) in map.resident.iter().enumerate() {
                if let Some(pid) = res {
                    self.write_back_if_dirty(shard, &shard.frames[idx], *pid)?;
                }
            }
        }
        Ok(())
    }

    /// Hit/miss/eviction counters, aggregated across shards.
    pub fn stats(&self) -> PoolStats {
        let mut out = PoolStats::default();
        for s in self.shards.iter() {
            out.hits += s.stats.hits.load(Ordering::Relaxed);
            out.misses += s.stats.misses.load(Ordering::Relaxed);
            out.evictions += s.stats.evictions.load(Ordering::Relaxed);
            out.writebacks += s.stats.writebacks.load(Ordering::Relaxed);
        }
        out
    }

    /// Zeroes the counters.
    pub fn reset_stats(&self) {
        for s in self.shards.iter() {
            s.stats.hits.store(0, Ordering::Relaxed);
            s.stats.misses.store(0, Ordering::Relaxed);
            s.stats.evictions.store(0, Ordering::Relaxed);
            s.stats.writebacks.store(0, Ordering::Relaxed);
        }
    }

    /// Writes the frame back iff dirty. The dirty bit is only cleared
    /// after the disk write succeeds, so a failed write leaves the
    /// frame dirty (and its bytes intact) for a later retry — callers
    /// can propagate the error without losing data.
    fn write_back_if_dirty(&self, shard: &Shard, frame: &Frame, pid: PageId) -> Result<()> {
        if frame.dirty.load(Ordering::Acquire) {
            let guard = frame.data.read();
            self.disk.write(pid, &guard)?;
            // Still under the read latch: no writer can have mutated the
            // page (or re-set the bit) since the bytes we just wrote.
            frame.dirty.store(false, Ordering::Release);
            shard.stats.writebacks.fetch_add(1, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Pins `id` into a frame of its shard, loading from disk on a miss.
    ///
    /// Every early return leaves the shard map consistent: a failed
    /// write-back keeps the victim resident (and dirty); a failed read
    /// returns the — by then possibly clobbered — frame to the free
    /// list with no page mapped to it.
    fn pin(&self, id: PageId) -> Result<Arc<Frame>> {
        let shard = self.shard_of(id);
        let mut map = shard.map.lock();
        if let Some(&idx) = map.table.get(&id) {
            let frame = &shard.frames[idx];
            frame.pin.fetch_add(1, Ordering::AcqRel);
            frame.refbit.store(true, Ordering::Relaxed);
            shard.stats.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(frame));
        }
        shard.stats.misses.fetch_add(1, Ordering::Relaxed);
        let idx = Self::find_victim(shard, &mut map)?;
        let frame = &shard.frames[idx];
        if let Some(old) = map.resident[idx] {
            // On error the victim stays resident and dirty — consistent.
            self.write_back_if_dirty(shard, frame, old)?;
            map.table.remove(&old);
            map.resident[idx] = None;
            shard.stats.evictions.fetch_add(1, Ordering::Relaxed);
        }
        // From here the frame is logically free (mapped to nothing).
        let loaded = {
            let mut guard = frame.data.write();
            let r = self.disk.read(id, &mut guard);
            frame.dirty.store(false, Ordering::Release);
            r
        };
        if let Err(e) = loaded {
            // The failed read may have clobbered the frame bytes; leave
            // the frame free rather than mapping anything to it.
            map.free.push(idx);
            return Err(e);
        }
        map.resident[idx] = Some(id);
        map.table.insert(id, idx);
        frame.pin.store(1, Ordering::Release);
        frame.refbit.store(true, Ordering::Relaxed);
        Ok(Arc::clone(frame))
    }

    #[inline]
    fn unpin(frame: &Frame) {
        frame.pin.fetch_sub(1, Ordering::AcqRel);
    }

    /// Clock (second-chance) victim selection over the shard's unpinned
    /// frames; free frames are taken from the free list first.
    fn find_victim(shard: &Shard, map: &mut ShardMap) -> Result<usize> {
        if let Some(idx) = map.free.pop() {
            return Ok(idx);
        }
        let n = shard.frames.len();
        // Two sweeps: the first clears reference bits, the second takes
        // the first unpinned frame. 2n+1 steps bound the scan.
        for _ in 0..(2 * n + 1) {
            let idx = map.clock_hand;
            map.clock_hand = (map.clock_hand + 1) % n;
            let frame = &shard.frames[idx];
            if frame.pin.load(Ordering::Acquire) != 0 {
                continue;
            }
            if frame.refbit.swap(false, Ordering::Relaxed) {
                continue;
            }
            return Ok(idx);
        }
        Err(StorageError::BufferPoolExhausted)
    }
}

/// Clamps a requested shard count so every shard keeps at least
/// [`MIN_FRAMES_PER_SHARD`] frames (never below one shard). This is the
/// one place the headroom policy lives — [`BufferPool::new`] applies it
/// to [`DEFAULT_POOL_SHARDS`], and `nbb-core`'s `DbConfig` applies it
/// to its `pool_shards` knob.
pub fn clamp_shards(capacity: usize, requested: usize) -> usize {
    requested.clamp(1, (capacity / MIN_FRAMES_PER_SHARD).max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::InMemoryDisk;

    fn pool(cap: usize) -> (Arc<BufferPool>, Arc<InMemoryDisk>) {
        let disk = Arc::new(InMemoryDisk::new(256));
        let pool = Arc::new(BufferPool::new(Arc::clone(&disk) as Arc<dyn DiskManager>, cap));
        (pool, disk)
    }

    #[test]
    fn read_your_writes() {
        let (pool, _) = pool(4);
        let id = pool.new_page().unwrap();
        pool.with_page_mut(id, |p| p.bytes_mut()[0] = 42).unwrap();
        let v = pool.with_page(id, |p| p.bytes()[0]).unwrap();
        assert_eq!(v, 42);
    }

    #[test]
    fn dirty_pages_survive_eviction() {
        let (pool, _) = pool(2);
        let a = pool.new_page().unwrap();
        pool.with_page_mut(a, |p| p.bytes_mut()[0] = 7).unwrap();
        // Evict `a` by touching other pages.
        for _ in 0..4 {
            let x = pool.new_page().unwrap();
            pool.with_page(x, |_| ()).unwrap();
        }
        assert!(!pool.contains(a));
        let v = pool.with_page(a, |p| p.bytes()[0]).unwrap();
        assert_eq!(v, 7, "dirty page must be written back before eviction");
        assert!(pool.stats().writebacks >= 1);
    }

    #[test]
    fn cache_writes_are_lost_on_eviction() {
        // The paper's key semantics: non-dirtying writes vanish when the
        // frame is reclaimed, so index-cache stores never cost I/O.
        let (pool, _) = pool(2);
        let a = pool.new_page().unwrap();
        pool.with_page_cache_write(a, |p| p.bytes_mut()[0] = 99).unwrap().unwrap();
        assert_eq!(pool.with_page(a, |p| p.bytes()[0]).unwrap(), 99);
        for _ in 0..4 {
            let x = pool.new_page().unwrap();
            pool.with_page(x, |_| ()).unwrap();
        }
        let v = pool.with_page(a, |p| p.bytes()[0]).unwrap();
        assert_eq!(v, 0, "non-dirty write must be dropped on eviction");
        assert_eq!(pool.stats().writebacks, 0);
    }

    #[test]
    fn mixed_dirty_then_cache_write_is_durable_for_dirty_part() {
        let (pool, _) = pool(2);
        let a = pool.new_page().unwrap();
        pool.with_page_mut(a, |p| p.bytes_mut()[0] = 1).unwrap();
        pool.with_page_cache_write(a, |p| p.bytes_mut()[1] = 2).unwrap().unwrap();
        // Cache write happened after the dirtying write while still
        // resident, so it piggybacks on the dirty flag — both persist.
        // (This mirrors real systems: non-dirtying writes make no
        // guarantee either way; they only promise not to *add* I/O.)
        for _ in 0..4 {
            let x = pool.new_page().unwrap();
            pool.with_page(x, |_| ()).unwrap();
        }
        assert_eq!(pool.with_page(a, |p| p.bytes()[0]).unwrap(), 1);
    }

    #[test]
    fn hit_and_miss_counters() {
        let (pool, _) = pool(2);
        let a = pool.new_page().unwrap();
        pool.with_page(a, |_| ()).unwrap(); // miss
        pool.with_page(a, |_| ()).unwrap(); // hit
        pool.with_page(a, |_| ()).unwrap(); // hit
        let s = pool.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 2);
        assert!((s.hit_rate() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn evict_page_forces_out() {
        let (pool, _) = pool(4);
        let a = pool.new_page().unwrap();
        pool.with_page(a, |_| ()).unwrap();
        assert!(pool.contains(a));
        pool.evict_page(a).unwrap();
        assert!(!pool.contains(a));
        // evicting a non-resident page is a no-op
        pool.evict_page(a).unwrap();
    }

    #[test]
    fn pool_survives_working_set_larger_than_capacity() {
        let (pool, _) = pool(3);
        let ids: Vec<_> = (0..20).map(|_| pool.new_page().unwrap()).collect();
        for (i, id) in ids.iter().enumerate() {
            pool.with_page_mut(*id, |p| p.bytes_mut()[0] = i as u8).unwrap();
        }
        for (i, id) in ids.iter().enumerate() {
            let v = pool.with_page(*id, |p| p.bytes()[0]).unwrap();
            assert_eq!(v, i as u8);
        }
    }

    #[test]
    fn flush_all_persists_dirty_pages() {
        let (pool, disk) = pool(4);
        let a = pool.new_page().unwrap();
        pool.with_page_mut(a, |p| p.bytes_mut()[5] = 55).unwrap();
        pool.flush_all().unwrap();
        let mut raw = Page::new(256);
        disk.read(a, &mut raw).unwrap();
        assert_eq!(raw.bytes()[5], 55);
    }

    #[test]
    fn concurrent_access_is_safe() {
        let (pool, _) = pool(8);
        let ids: Vec<_> = (0..8).map(|_| pool.new_page().unwrap()).collect();
        let mut handles = Vec::new();
        for t in 0..4 {
            let pool = Arc::clone(&pool);
            let ids = ids.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..500 {
                    let id = ids[(t * 3 + i) % ids.len()];
                    if i % 3 == 0 {
                        pool.with_page_mut(id, |p| p.bytes_mut()[t] = p.bytes()[t].wrapping_add(1))
                            .unwrap();
                    } else {
                        pool.with_page(id, |p| p.bytes()[t]).unwrap();
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn try_cache_write_gives_up_under_contention() {
        use std::sync::mpsc;
        let (pool, _) = pool(4);
        let id = pool.new_page().unwrap();
        let (started_tx, started_rx) = mpsc::channel();
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let p2 = Arc::clone(&pool);
        let holder = std::thread::spawn(move || {
            p2.with_page_mut(id, |_| {
                started_tx.send(()).unwrap();
                release_rx.recv().unwrap();
            })
            .unwrap();
        });
        started_rx.recv().unwrap();
        // Frame write-latch is held by the other thread: cache write skips.
        let r = pool.with_page_cache_write(id, |p| p.bytes_mut()[0] = 1).unwrap();
        assert!(r.is_none(), "cache write should give up under contention");
        release_tx.send(()).unwrap();
        holder.join().unwrap();
    }

    // -----------------------------------------------------------------
    // Sharding
    // -----------------------------------------------------------------

    #[test]
    fn default_shard_count_scales_with_capacity() {
        let (small, _) = pool(4);
        assert_eq!(small.shards(), 1, "tiny pools stay single-shard");
        let (mid, _) = pool(32);
        assert_eq!(mid.shards(), 2);
        let (big, _) = pool(1024);
        assert_eq!(big.shards(), DEFAULT_POOL_SHARDS);
        assert_eq!(big.capacity(), 1024);
    }

    #[test]
    fn explicit_shard_count_is_honored_and_clamped() {
        let disk: Arc<dyn DiskManager> = Arc::new(InMemoryDisk::new(256));
        let p = BufferPool::new_sharded(Arc::clone(&disk), 64, 4);
        assert_eq!(p.shards(), 4);
        assert_eq!(p.capacity(), 64);
        let p = BufferPool::new_sharded(Arc::clone(&disk), 3, 100);
        assert_eq!(p.shards(), 3, "shards clamp to capacity");
        assert_eq!(p.capacity(), 3);
        let p = BufferPool::new_sharded(disk, 16, 0);
        assert_eq!(p.shards(), 1, "zero shards clamps to one");
    }

    #[test]
    fn uneven_capacity_distributes_all_frames() {
        let disk: Arc<dyn DiskManager> = Arc::new(InMemoryDisk::new(256));
        let p = BufferPool::new_sharded(disk, 13, 4);
        assert_eq!(p.shards(), 4);
        assert_eq!(p.capacity(), 13, "every frame must land in some shard");
    }

    #[test]
    fn sharded_pool_full_workout_matches_disk_truth() {
        // Working set ≫ capacity on a many-sharded pool: every page must
        // still read back its own bytes through eviction and reload.
        let disk: Arc<dyn DiskManager> = Arc::new(InMemoryDisk::new(256));
        let pool = Arc::new(BufferPool::new_sharded(disk, 8, 4));
        let ids: Vec<_> = (0..64).map(|_| pool.new_page().unwrap()).collect();
        for (i, id) in ids.iter().enumerate() {
            pool.with_page_mut(*id, |p| p.bytes_mut()[3] = i as u8).unwrap();
        }
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(pool.with_page(*id, |p| p.bytes()[3]).unwrap(), i as u8);
        }
        let s = pool.stats();
        assert!(s.misses >= 64, "first touch of each page must miss");
        assert!(s.evictions > 0);
    }

    #[test]
    fn stats_aggregate_across_shards() {
        let disk: Arc<dyn DiskManager> = Arc::new(InMemoryDisk::new(256));
        let pool = Arc::new(BufferPool::new_sharded(disk, 16, 4));
        let ids: Vec<_> = (0..16).map(|_| pool.new_page().unwrap()).collect();
        for id in &ids {
            pool.with_page(*id, |_| ()).unwrap(); // 16 misses
        }
        for id in &ids {
            pool.with_page(*id, |_| ()).unwrap(); // 16 hits
        }
        let s = pool.stats();
        assert_eq!(s.misses, 16);
        assert_eq!(s.hits, 16);
        pool.reset_stats();
        assert_eq!(pool.stats(), PoolStats::default());
    }

    #[test]
    fn shards_do_not_share_frames() {
        // A page storm on one shard must not evict the other shard's
        // residents: page ids congruent mod 2 stay in their stripe.
        let disk: Arc<dyn DiskManager> = Arc::new(InMemoryDisk::new(256));
        let pool = Arc::new(BufferPool::new_sharded(disk, 4, 2));
        let ids: Vec<_> = (0..12).map(|_| pool.new_page().unwrap()).collect();
        // Pin nothing; touch one even page, then storm odd pages.
        pool.with_page(ids[0], |_| ()).unwrap();
        for id in ids.iter().filter(|id| id.0 % 2 == 1) {
            pool.with_page(*id, |_| ()).unwrap();
        }
        assert!(pool.contains(ids[0]), "odd-page storm evicted an even-shard resident");
    }

    #[test]
    fn failed_read_leaves_pool_consistent() {
        use crate::stats::IoStats;
        use std::sync::atomic::AtomicBool;

        /// Disk whose reads can be switched to fail, for error-path tests.
        struct FlakyDisk {
            inner: InMemoryDisk,
            fail_reads: AtomicBool,
        }
        impl DiskManager for FlakyDisk {
            fn page_size(&self) -> usize {
                self.inner.page_size()
            }
            fn allocate(&self) -> Result<PageId> {
                self.inner.allocate()
            }
            fn read(&self, id: PageId, buf: &mut Page) -> Result<()> {
                if self.fail_reads.load(Ordering::Relaxed) {
                    return Err(StorageError::Io("injected read failure".into()));
                }
                self.inner.read(id, buf)
            }
            fn write(&self, id: PageId, page: &Page) -> Result<()> {
                self.inner.write(id, page)
            }
            fn num_pages(&self) -> u64 {
                self.inner.num_pages()
            }
            fn stats(&self) -> IoStats {
                self.inner.stats()
            }
            fn reset_stats(&self) {
                self.inner.reset_stats()
            }
        }

        let disk = Arc::new(FlakyDisk {
            inner: InMemoryDisk::new(256),
            fail_reads: AtomicBool::new(false),
        });
        let pool = BufferPool::new_sharded(Arc::clone(&disk) as Arc<dyn DiskManager>, 2, 1);
        // Fill both frames, one dirty.
        let a = pool.new_page().unwrap();
        let b = pool.new_page().unwrap();
        let c = pool.new_page().unwrap();
        pool.with_page_mut(a, |p| p.bytes_mut()[0] = 11).unwrap();
        pool.with_page(b, |_| ()).unwrap();
        // Inject failures: faulting `c` must error without corrupting
        // the map — and must not lose `a`'s dirty data.
        disk.fail_reads.store(true, Ordering::Relaxed);
        assert!(pool.with_page(c, |_| ()).is_err());
        disk.fail_reads.store(false, Ordering::Relaxed);
        // Everything still readable with the right contents.
        assert_eq!(pool.with_page(a, |p| p.bytes()[0]).unwrap(), 11);
        pool.with_page(b, |_| ()).unwrap();
        pool.with_page(c, |_| ()).unwrap();
        assert_eq!(pool.with_page(a, |p| p.bytes()[0]).unwrap(), 11, "dirty page lost");
    }

    #[test]
    fn batch_reads_match_point_reads_and_group_lock_work() {
        let disk: Arc<dyn DiskManager> = Arc::new(InMemoryDisk::new(256));
        let pool = Arc::new(BufferPool::new_sharded(disk, 32, 4));
        let ids: Vec<_> = (0..24).map(|_| pool.new_page().unwrap()).collect();
        for (i, id) in ids.iter().enumerate() {
            pool.with_page_mut(*id, |p| p.bytes_mut()[0] = i as u8).unwrap();
        }
        // Mixed residency: evict half, then batch-read everything plus
        // duplicates, out of order.
        for id in ids.iter().step_by(2) {
            pool.evict_page(*id).unwrap();
        }
        let mut asked: Vec<PageId> = ids.iter().rev().copied().collect();
        asked.push(ids[5]);
        asked.push(ids[5]);
        let got = pool.with_page_batch(&asked, |_, p| p.bytes()[0]).unwrap();
        for (pos, id) in asked.iter().enumerate() {
            let want = ids.iter().position(|x| x == id).unwrap() as u8;
            assert_eq!(got[pos], want, "position {pos}");
        }
        let s = pool.stats();
        assert_eq!(s.hits + s.misses - 24, asked.len() as u64, "every batch member counted");
    }

    #[test]
    fn batch_on_tiny_pool_behaves_like_point_calls() {
        // 2 frames, 1 shard: more batch members than frames must still
        // succeed (pins drain before misses fault).
        let disk: Arc<dyn DiskManager> = Arc::new(InMemoryDisk::new(256));
        let pool = BufferPool::new_sharded(disk, 2, 1);
        let ids: Vec<_> = (0..10).map(|_| pool.new_page().unwrap()).collect();
        for (i, id) in ids.iter().enumerate() {
            pool.with_page_mut(*id, |p| p.bytes_mut()[0] = i as u8).unwrap();
        }
        let got = pool.with_page_batch(&ids, |_, p| p.bytes()[0]).unwrap();
        assert_eq!(got, (0..10).map(|i| i as u8).collect::<Vec<_>>());
    }

    #[test]
    fn concurrent_threads_on_distinct_shards() {
        let disk: Arc<dyn DiskManager> = Arc::new(InMemoryDisk::new(256));
        let pool = Arc::new(BufferPool::new_sharded(disk, 64, 8));
        let ids: Vec<_> = (0..64).map(|_| pool.new_page().unwrap()).collect();
        let mut handles = Vec::new();
        for t in 0..8usize {
            let pool = Arc::clone(&pool);
            let ids = ids.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..2000usize {
                    let id = ids[(i * 7 + t * 13) % ids.len()];
                    if i % 5 == 0 {
                        pool.with_page_mut(id, |p| {
                            p.bytes_mut()[t] = p.bytes()[t].wrapping_add(1);
                        })
                        .unwrap();
                    } else {
                        pool.with_page(id, |p| p.bytes()[t]).unwrap();
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let s = pool.stats();
        assert_eq!(s.hits + s.misses, 8 * 2000);
    }
}
