//! # nbb-storage — storage substrate for *No Bits Left Behind*
//!
//! The page-level machinery every technique in the paper manipulates:
//!
//! * [`page`] — raw fixed-size page buffers and [`page::PageId`]s.
//! * [`slotted`] — slotted data pages with a slot directory and a
//!   measurable *fill factor* (the paper's "unused space" metric).
//! * [`heap`] — append-oriented heap files with stable [`rid::RecordId`]s
//!   and the delete-then-append relocation primitive §3.1 clusters with.
//! * [`disk`] — in-memory, simulated-latency, blocking-latency, and
//!   file-backed disks with I/O accounting ([`stats::IoStats`]).
//! * [`buffer`] — a lock-striped, clock-eviction buffer pool: page ids
//!   hash to independent shards (own frame table, free list, clock hand,
//!   cache-line-padded atomic counters), so concurrent accesses to
//!   distinct pages rarely contend. Faults run through an
//!   I/O-in-progress frame state machine: the shard lock is released
//!   across the disk read, same-page requesters park on the in-flight
//!   load instead of duplicating it, and dirty evictions hand their
//!   bytes to a write-behind queue drained by a background flusher —
//!   so one stripe overlaps frames-many faults and victim reclaim never
//!   waits on the device. A byte-budgeted **compressed frame tier**
//!   (`compressed_budget_bytes` in [`buffer::BufferPool::with_options`])
//!   catches clock victims on their way out: a background worker
//!   compresses the evicted bytes ([`nbb_encoding::pagecodec`]) and a
//!   later fault on the page decompresses instead of touching the disk —
//!   trading spare CPU for an effectively larger pool, the crate's
//!   "no bits left behind" answer for memory itself. Budget 0 (the
//!   default) disables the tier bit-for-bit.
//!   [`buffer::BufferPool::with_page_cache_write`] provides the paper's
//!   §2.1.1 contract: page writes that never dirty the frame and give up
//!   under latch contention, so index caching adds zero I/O.
//!
//! Everything is synchronous and internally synchronized; a single
//! [`buffer::BufferPool`] can be shared by heaps and B+Trees across
//! threads. Readers of distinct pages proceed in parallel up to shard
//! collisions, and a shard's faults overlap up to its frame count.

#![warn(missing_docs)]

pub mod buffer;
pub mod disk;
pub mod error;
pub mod heap;
pub mod lockrank;
pub mod page;
pub mod rid;
pub mod slotted;
pub mod stats;

pub use buffer::{
    clamp_shards, BufferPool, PoolOptions, DEFAULT_POOL_SHARDS, DEFAULT_WRITE_BEHIND,
    MIN_FRAMES_PER_SHARD,
};
pub use disk::{DiskManager, DiskModel, FileDisk, InMemoryDisk, LatencyDisk, SimulatedDisk};
pub use error::{Result, StorageError};
pub use heap::HeapFile;
pub use page::{Page, PageId, DEFAULT_PAGE_SIZE};
pub use rid::RecordId;
pub use slotted::{SlottedPage, SlottedPageRef};
pub use stats::{IoStats, PoolStats};
