//! The workspace-wide lock-order lattice.
//!
//! Every blocking lock in the engine crates (`nbb-storage`,
//! `nbb-btree`, `nbb-core`) is constructed with one of these ranks via
//! [`parking_lot::Mutex::with_rank`] / [`parking_lot::RwLock::with_rank`].
//! In debug builds the shim keeps a thread-local stack of held ranks
//! and panics — naming both locks — on any acquisition that does not
//! strictly ascend this order, so the whole test suite doubles as a
//! lock-order model check. In release builds the ranks are compiled
//! out entirely.
//!
//! The lattice, lowest (acquire first) to highest (acquire last):
//!
//! | level | rank                     | guards                                        |
//! |------:|--------------------------|-----------------------------------------------|
//! |     1 | [`SERVER_LIFECYCLE`]     | `nbb-server` thread registry + shutdown flag   |
//! |     2 | [`SERVER_CONNS`]         | `nbb-server` connection table                  |
//! |     3 | [`SERVER_WORK_QUEUE`]    | `nbb-server` shared work queue                 |
//! |     4 | [`SERVER_CONN_RESP`]     | `nbb-server` per-connection response queue     |
//! |     5 | [`TUNER`]                | tuner decision ring + controller state         |
//! |    10 | [`DB_TABLES`]            | `Database.tables` registry                     |
//! |    15 | [`TABLE_INDEXES`]        | `Table.indexes` registry                       |
//! |    20 | [`INTENT_STRIPE`]        | `KeyIntents` stripe maps                       |
//! |    25 | [`INTENT_SLOT`]          | per-key `IntentSlot` state                     |
//! |    30 | [`TREE_STRUCTURE`]       | B+tree structure lock (`BTree.root`)           |
//! |    40 | [`LEAF_LATCH`]           | striped per-leaf write latches                 |
//! |    50 | [`HEAP_DIRECTORY`]       | `HeapFile` page-id directory                   |
//! |    55 | [`JOIN_CACHE`]           | §2.2 join cache (page budgets + entries)       |
//! |    60 | [`POOL_SHARD_MAP`]       | buffer-pool shard residency maps               |
//! |    65 | [`POOL_FRAME`]           | per-frame page latches (multi: latch coupling) |
//! |    66 | [`TREE_INVALIDATION_LOG`]| cache invalidation predicate log               |
//! |    67 | [`POOL_INFLIGHT`]        | per-fault `InFlight` coalescing state          |
//! |    68 | [`TREE_RNG`]             | cache-promotion RNG                            |
//! |    70 | [`POOL_WRITE_BEHIND`]    | write-behind queue state                       |
//! |    75 | [`POOL_COMPRESSED_TIER`] | compressed cold-frame tier state               |
//! |    90 | [`DISK_IO`]              | disk backends (multi: wrapper disks may nest)  |
//!
//! The server band (1–4) sits *below* every engine rank because server
//! threads call into the engine — a worker that still held a server
//! lock while executing a batched op would need that lock to order
//! before `TUNER` and everything above it. (By design workers drop all
//! server locks before touching the `Database`; the band makes the
//! checker prove it.) The client band ([`CLIENT_PENDING`] 6,
//! [`CLIENT_WRITE`] 7) is standalone: client threads never take engine
//! locks, the numbering only keeps the two client locks ordered with
//! respect to each other.
//!
//! Two placements look surprising but are forced by real acquisition
//! paths: the invalidation log and the promotion RNG are *tree*-level
//! state, yet they rank **above** the pool frame latch because the tree
//! locks them from inside `with_page` / `with_page_cache_write`
//! callbacks, i.e. while a frame latch is held. See `CONCURRENCY.md`
//! at the repo root for the full walk-through of every path.
//!
//! The constants live here (not in the `parking_lot` shim) because
//! `nbb-storage` is the lowest engine crate every other engine crate
//! already depends on; the shim provides only the mechanism.

pub use parking_lot::Rank;

/// `nbb-server`'s lifecycle state: the worker/acceptor thread registry
/// and the shutdown flag. First lock a shutdown caller takes, released
/// before joining any thread.
pub const SERVER_LIFECYCLE: Rank = Rank::new(1, "server.lifecycle");

/// `nbb-server`'s connection table. Held briefly to register /
/// deregister a connection; shutdown waits on its condvar for the
/// table to drain.
pub const SERVER_CONNS: Rank = Rank::new(2, "server.conns");

/// `nbb-server`'s shared work queue feeding the worker pool. Workers
/// release it before executing a job against the `Database`.
pub const SERVER_WORK_QUEUE: Rank = Rank::new(3, "server.work_queue");

/// `nbb-server`'s per-connection response queue (the backpressure
/// point: readers park on its slot condvar when the queue is full).
/// Highest server rank — nothing else is acquired under it, and engine
/// calls never happen while it is held.
pub const SERVER_CONN_RESP: Rank = Rank::new(4, "server.conn_resp");

/// `nbb-client`'s pending-request map (id → completed response slot).
/// Client band: client threads never take engine locks; this orders
/// only against [`CLIENT_WRITE`].
pub const CLIENT_PENDING: Rank = Rank::new(6, "client.pending");

/// `nbb-client`'s socket write lock. Above [`CLIENT_PENDING`] in
/// number but acquired with the pending map already *released* — the
/// send path must never hold the pending map across a blocking socket
/// write (see `CONCURRENCY.md`).
pub const CLIENT_WRITE: Rank = Rank::new(7, "client.write");

/// The free-space tuner's controller state and decision ring. Lowest
/// rank in the lattice — acquired *first*, above every engine lock —
/// because the tuner thread holds it while sampling stats (which walks
/// tables, trees, and pool gauges, reaching every rank below) and
/// while applying resize hooks. Conversely nothing in the engine ever
/// locks tuner state from inside an engine lock: readers of the
/// decision ring (the waste report) take it as their first lock too.
pub const TUNER: Rank = Rank::new(5, "core.tuner");

/// `Database.tables`: the table registry. Held briefly for lookup /
/// create; `create_table` and `reopen` hold the write side across
/// table construction, which reaches every rank below.
pub const DB_TABLES: Rank = Rank::new(10, "db.tables");

/// `Table.indexes`: the per-table index registry. The read side is
/// held across multi-index maintenance loops (tree inserts/deletes),
/// so everything the tree touches must rank above it.
pub const TABLE_INDEXES: Rank = Rank::new(15, "table.indexes");

/// `KeyIntents` stripe maps. Intents order strictly before tree and
/// pool locks: writers stage all key intents *before* descending.
/// Releasing an intent re-locks its stripe, so holding any higher rank
/// while dropping an `IntentGuard` is flagged too.
pub const INTENT_STRIPE: Rank = Rank::new(20, "btree.intent_stripe");

/// Per-key `IntentSlot` state, locked nested inside its stripe during
/// install/handoff and alone while parked on the slot condvar.
pub const INTENT_SLOT: Rank = Rank::new(25, "btree.intent_slot");

/// The B+tree structure lock (`BTree.root`): read side for crabbing
/// descents, write side for escalated splits.
pub const TREE_STRUCTURE: Rank = Rank::new(30, "btree.structure");

/// Striped per-leaf write latches. Not `multi`: a thread holds at most
/// one leaf latch at a time (the documented crabbing discipline), and
/// the rank check now enforces that promise.
pub const LEAF_LATCH: Rank = Rank::new(40, "btree.leaf_latch");

/// `HeapFile`'s directory of allocated page ids. Guards are transient
/// (never held across pool calls), but scans take it before faulting
/// pages in, so it ranks below the pool.
pub const HEAP_DIRECTORY: Rank = Rank::new(50, "heap.directory");

/// The §2.2 join cache (per-page budgets, entry maps, global clock).
/// Below the pool ranks because a guard-holder may call into the pool
/// (e.g. sizing decisions that read pool gauges), never the reverse.
pub const JOIN_CACHE: Rank = Rank::new(55, "core.join_cache");

/// Buffer-pool shard residency maps. Dropped across disk reads on the
/// fault path; held across frame-latch acquisition when publishing,
/// retiring, and in the sync write fallback.
pub const POOL_SHARD_MAP: Rank = Rank::new(60, "pool.shard_map");

/// Per-frame page latches. Loaders hold the write side across
/// write-behind drains, compressed-tier claims, and disk reads.
///
/// `multi`: user closures run under a frame latch and may re-enter the
/// pool for a *distinct* page (nested `with_page` — latch coupling),
/// so one thread legitimately holds several frame latches at once.
/// Same-page re-entry would self-deadlock regardless of ranks; the
/// pin protocol, not the lattice, is what keeps coupling safe (see
/// `CONCURRENCY.md` §frame/map exemption).
pub const POOL_FRAME: Rank = Rank::new_multi(65, "pool.frame");

/// Per-fault `InFlight` coalescing state (loser threads park here
/// while one loader faults the page in). Above [`POOL_FRAME`] because
/// a nested fault parks on — and a nested loader resolves — the slot
/// while the caller's outer frame latch is still held.
pub const POOL_INFLIGHT: Rank = Rank::new(67, "pool.inflight");

/// The tree's cache-invalidation predicate log. Above [`POOL_FRAME`]
/// because `check_page` locks it from inside a `with_page` callback.
pub const TREE_INVALIDATION_LOG: Rank = Rank::new(66, "btree.invalidation_log");

/// The tree's cache-promotion RNG. Above [`POOL_FRAME`] because
/// promotion decisions run inside `with_page_cache_write` callbacks
/// (under the frame's write try-latch).
pub const TREE_RNG: Rank = Rank::new(68, "btree.cache_rng");

/// Write-behind queue state (bounded queue, flusher handshake,
/// drain/serve-fault barriers).
pub const POOL_WRITE_BEHIND: Rank = Rank::new(70, "pool.write_behind");

/// Compressed cold-frame tier state (demotion queue, slot directory,
/// compressor handshake).
pub const POOL_COMPRESSED_TIER: Rank = Rank::new(75, "pool.compressed_tier");

/// Disk backends: `InMemoryDisk`'s page vector and `FileDisk`'s
/// non-unix positional-I/O lock. Terminal — nothing is ever acquired
/// under a disk lock — and `multi` because wrapper disks (latency /
/// fault injection) delegate to an inner disk's lock of the same rank.
pub const DISK_IO: Rank = Rank::new_multi(90, "disk.io");

// The checker itself is unit-tested in the `parking_lot` shim; these
// tests pin the *engine's* lattice — the constants above, by name —
// so a rank renumbering that breaks the documented order fails here.
#[cfg(all(test, debug_assertions))]
mod tests {
    use super::*;
    use parking_lot::{Mutex, RwLock};

    #[test]
    fn full_lattice_descends_in_order() {
        let lifecycle = Mutex::with_rank(SERVER_LIFECYCLE, ());
        let conns = Mutex::with_rank(SERVER_CONNS, ());
        let work = Mutex::with_rank(SERVER_WORK_QUEUE, ());
        let resp = Mutex::with_rank(SERVER_CONN_RESP, ());
        let tuner = Mutex::with_rank(TUNER, ());
        let tables = RwLock::with_rank(DB_TABLES, ());
        let stripe = Mutex::with_rank(INTENT_STRIPE, ());
        let slot = Mutex::with_rank(INTENT_SLOT, ());
        let root = RwLock::with_rank(TREE_STRUCTURE, ());
        let leaf = Mutex::with_rank(LEAF_LATCH, ());
        let dir = RwLock::with_rank(HEAP_DIRECTORY, ());
        let jc = Mutex::with_rank(JOIN_CACHE, ());
        let map = Mutex::with_rank(POOL_SHARD_MAP, ());
        let frame = RwLock::with_rank(POOL_FRAME, ());
        let disk = Mutex::with_rank(DISK_IO, ());

        let _s1 = lifecycle.lock();
        let _s2 = conns.lock();
        let _s3 = work.lock();
        let _s4 = resp.lock();
        let _t = tuner.lock();
        let _a = tables.read();
        let _b = stripe.lock();
        let _c = slot.lock();
        let _d = root.read();
        let _e = leaf.lock();
        let _f = dir.write();
        let _j = jc.lock();
        let _g = map.lock();
        let _h = frame.write();
        let _i = disk.lock();
        assert_eq!(parking_lot::held_rank_count(), 15);
    }

    #[test]
    #[should_panic(
        expected = "acquiring 'server.conn_resp' (rank 4) while holding 'core.tuner' (rank 5)"
    )]
    fn engine_locks_never_nest_server_locks() {
        // The server band sits below the engine: a thread inside an
        // engine lock must never reach back into server state.
        let tuner = Mutex::with_rank(TUNER, ());
        let resp = Mutex::with_rank(SERVER_CONN_RESP, ());
        let _held = tuner.lock();
        let _boom = resp.lock();
    }

    #[test]
    #[should_panic(expected = "acquiring 'db.tables' (rank 10) while holding 'disk.io' (rank 90)")]
    fn inverted_acquisition_panics_naming_both_locks() {
        let disk = Mutex::with_rank(DISK_IO, ());
        let tables = RwLock::with_rank(DB_TABLES, ());
        let _held = disk.lock();
        let _boom = tables.write();
    }

    #[test]
    #[should_panic(expected = "acquiring 'pool.shard_map' (rank 60) while holding 'pool.frame'")]
    fn frame_to_map_nesting_requires_the_exemption() {
        // The pin()-path direction: a plain `lock()` under a frame
        // latch must trip the checker — only `lock_unordered()` (with
        // its written justification) may take this edge.
        let frame = RwLock::with_rank(POOL_FRAME, ());
        let map = Mutex::with_rank(POOL_SHARD_MAP, ());
        let _latch = frame.read();
        let _boom = map.lock();
    }

    #[test]
    #[should_panic(
        expected = "acquiring 'btree.leaf_latch' (rank 40) while holding 'btree.leaf_latch'"
    )]
    fn leaf_latches_do_not_nest() {
        // The crabbing promise (tree.rs module docs): a thread holds at
        // most one leaf latch at a time. LEAF_LATCH is deliberately not
        // `multi`, so the checker enforces it.
        let a = Mutex::with_rank(LEAF_LATCH, ());
        let b = Mutex::with_rank(LEAF_LATCH, ());
        let _first = a.lock();
        let _boom = b.lock();
    }

    #[test]
    fn multi_ranks_permit_same_level_nesting() {
        // Latch coupling (nested with_page on distinct pages) and
        // wrapper disks delegating to inner disks are legal.
        let outer = RwLock::with_rank(POOL_FRAME, ());
        let inner = RwLock::with_rank(POOL_FRAME, ());
        let _o = outer.write();
        let _i = inner.read();
        let wrapper = Mutex::with_rank(DISK_IO, ());
        let inner_disk = Mutex::with_rank(DISK_IO, ());
        let _w = wrapper.lock();
        let _d = inner_disk.lock();
    }
}
