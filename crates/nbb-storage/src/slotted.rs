//! Slotted data pages: variable-length tuple storage with a slot directory.
//!
//! Layout (all offsets little-endian, page size ≤ 64 KiB):
//!
//! ```text
//! 0      2      4        6       8         10        16
//! +------+------+--------+-------+---------+---------+----------------+
//! |magic |nslots|freelow |freehi |livecount|reserved | slot directory |
//! +------+------+--------+-------+---------+---------+----------------+
//! | ... free space ...                                                |
//! +-------------------------------------------------------------------+
//! | tuple data (grows downward from the end of the page)              |
//! +-------------------------------------------------------------------+
//! ```
//!
//! Each slot directory entry is 4 bytes: `(offset: u16, len: u16)`. An
//! entry with `offset == 0` is a dead (deleted) slot; slot indices are
//! stable across deletes so [`RecordId`](crate::rid::RecordId)s stay valid.
//!
//! This is the structure whose *fill factor* the paper audits: the bytes
//! between the end of the slot directory and the start of tuple data are
//! allocated but hold nothing.

use crate::error::{Result, StorageError};
use crate::page::Page;

const MAGIC: u16 = 0x5B50; // "[P"
const OFF_MAGIC: usize = 0;
const OFF_NSLOTS: usize = 2;
const OFF_FREE_LOW: usize = 4;
const OFF_FREE_HIGH: usize = 6;
const OFF_LIVE: usize = 8;
/// Size of the fixed page header.
pub const SLOTTED_HEADER_SIZE: usize = 16;
const SLOT_ENTRY_SIZE: usize = 4;

/// Mutable view over a [`Page`] interpreted as a slotted data page.
pub struct SlottedPage<'a> {
    page: &'a mut Page,
}

/// Read-only view over a [`Page`] interpreted as a slotted data page.
pub struct SlottedPageRef<'a> {
    page: &'a Page,
}

impl<'a> SlottedPage<'a> {
    /// Initializes `page` as an empty slotted page, erasing prior content.
    pub fn init(page: &'a mut Page) -> Self {
        page.clear();
        let size = page.size();
        page.write_u16(OFF_MAGIC, MAGIC);
        page.write_u16(OFF_NSLOTS, 0);
        page.write_u16(OFF_FREE_LOW, SLOTTED_HEADER_SIZE as u16);
        page.write_u16(OFF_FREE_HIGH, size as u16 - 1); // inclusive-exclusive below
        page.write_u16(OFF_LIVE, 0);
        // free_high is stored minus one so 65536-byte pages fit in u16;
        // we restrict pages to <= 64 KiB - 1 effective bytes instead: use
        // size-1 and treat data end as free_high+1.
        SlottedPage { page }
    }

    /// Wraps an already-initialized slotted page.
    pub fn attach(page: &'a mut Page) -> Result<Self> {
        if page.read_u16(OFF_MAGIC) != MAGIC {
            return Err(StorageError::Corrupt("slotted page magic mismatch".into()));
        }
        Ok(SlottedPage { page })
    }

    fn nslots(&self) -> u16 {
        self.page.read_u16(OFF_NSLOTS)
    }

    fn free_low(&self) -> usize {
        self.page.read_u16(OFF_FREE_LOW) as usize
    }

    fn free_high(&self) -> usize {
        self.page.read_u16(OFF_FREE_HIGH) as usize + 1
    }

    fn set_free_low(&mut self, v: usize) {
        self.page.write_u16(OFF_FREE_LOW, v as u16);
    }

    fn set_free_high(&mut self, v: usize) {
        self.page.write_u16(OFF_FREE_HIGH, (v - 1) as u16);
    }

    fn slot_entry(&self, slot: u16) -> (usize, usize) {
        let base = SLOTTED_HEADER_SIZE + slot as usize * SLOT_ENTRY_SIZE;
        (self.page.read_u16(base) as usize, self.page.read_u16(base + 2) as usize)
    }

    fn set_slot_entry(&mut self, slot: u16, off: usize, len: usize) {
        let base = SLOTTED_HEADER_SIZE + slot as usize * SLOT_ENTRY_SIZE;
        self.page.write_u16(base, off as u16);
        self.page.write_u16(base + 2, len as u16);
    }

    /// Number of live (non-deleted) tuples.
    pub fn live_count(&self) -> usize {
        self.page.read_u16(OFF_LIVE) as usize
    }

    /// Contiguous free bytes available for one more insert (accounting for
    /// the new slot directory entry the insert may need).
    pub fn free_space(&self) -> usize {
        let gap = self.free_high().saturating_sub(self.free_low());
        gap.saturating_sub(SLOT_ENTRY_SIZE)
    }

    /// Fraction of the page occupied by live tuple bytes plus live
    /// directory entries plus the header — the "fill factor" the paper
    /// reports (68% typical for B+Trees, as low as 2% for Wikipedia's
    /// revision heap pages under hot/cold mixing).
    pub fn fill_factor(&self) -> f64 {
        let mut used = SLOTTED_HEADER_SIZE;
        for s in 0..self.nslots() {
            let (off, len) = self.slot_entry(s);
            used += SLOT_ENTRY_SIZE;
            if off != 0 {
                used += len;
            }
        }
        used as f64 / self.page.size() as f64
    }

    /// Inserts a tuple, returning its slot. Reuses dead slots when possible.
    pub fn insert(&mut self, tuple: &[u8]) -> Result<u16> {
        if tuple.is_empty() {
            return Err(StorageError::Corrupt("empty tuples are not storable".into()));
        }
        let max = self.page.size() - SLOTTED_HEADER_SIZE - SLOT_ENTRY_SIZE;
        if tuple.len() > max {
            return Err(StorageError::TupleTooLarge { size: tuple.len(), max });
        }
        // Find a dead slot to reuse, else we need a new directory
        // entry. `live == nslots` means no slot is dead, so the common
        // append-only shape (fresh tail pages filled by `append_many`)
        // skips the scan entirely instead of re-walking the directory
        // on every insert.
        let nslots = self.nslots();
        let mut reuse: Option<u16> = None;
        if self.live_count() < usize::from(nslots) {
            for s in 0..nslots {
                if self.slot_entry(s).0 == 0 {
                    reuse = Some(s);
                    break;
                }
            }
        }
        let dir_growth = if reuse.is_some() { 0 } else { SLOT_ENTRY_SIZE };
        let gap = self.free_high().saturating_sub(self.free_low());
        if gap < tuple.len() + dir_growth {
            return Err(StorageError::PageFull {
                needed: tuple.len() + dir_growth,
                available: gap,
            });
        }
        let data_start = self.free_high() - tuple.len();
        self.page.bytes_mut()[data_start..data_start + tuple.len()].copy_from_slice(tuple);
        self.set_free_high(data_start);
        let slot = match reuse {
            Some(s) => s,
            None => {
                let s = nslots;
                self.page.write_u16(OFF_NSLOTS, nslots + 1);
                self.set_free_low(self.free_low() + SLOT_ENTRY_SIZE);
                s
            }
        };
        self.set_slot_entry(slot, data_start, tuple.len());
        let live = self.live_count() + 1;
        self.page.write_u16(OFF_LIVE, live as u16);
        Ok(slot)
    }

    /// Deletes the tuple in `slot`. The slot becomes dead and reusable;
    /// the tuple bytes are reclaimed only at the next [`compact`](Self::compact).
    pub fn delete(&mut self, slot: u16) -> Result<()> {
        self.check_live(slot)?;
        self.set_slot_entry(slot, 0, 0);
        let live = self.live_count() - 1;
        self.page.write_u16(OFF_LIVE, live as u16);
        Ok(())
    }

    /// Overwrites the tuple in `slot`. Same-or-smaller sizes update in
    /// place; growth requires enough free space for a fresh copy.
    pub fn update(&mut self, slot: u16, tuple: &[u8]) -> Result<()> {
        self.check_live(slot)?;
        let (off, len) = self.slot_entry(slot);
        if tuple.len() <= len {
            self.page.bytes_mut()[off..off + tuple.len()].copy_from_slice(tuple);
            self.set_slot_entry(slot, off, tuple.len());
            return Ok(());
        }
        let gap = self.free_high().saturating_sub(self.free_low());
        if gap < tuple.len() {
            return Err(StorageError::PageFull { needed: tuple.len(), available: gap });
        }
        let data_start = self.free_high() - tuple.len();
        self.page.bytes_mut()[data_start..data_start + tuple.len()].copy_from_slice(tuple);
        self.set_free_high(data_start);
        self.set_slot_entry(slot, data_start, tuple.len());
        Ok(())
    }

    /// Rewrites the tuple region so all live tuples are contiguous,
    /// reclaiming space from deleted and superseded tuples. Slot indices
    /// are preserved.
    pub fn compact(&mut self) {
        let nslots = self.nslots();
        let mut live: Vec<(u16, Vec<u8>)> = Vec::with_capacity(self.live_count());
        for s in 0..nslots {
            let (off, len) = self.slot_entry(s);
            if off != 0 {
                live.push((s, self.page.bytes()[off..off + len].to_vec()));
            }
        }
        let mut high = self.page.size();
        for (s, bytes) in &live {
            high -= bytes.len();
            self.page.bytes_mut()[high..high + bytes.len()].copy_from_slice(bytes);
            self.set_slot_entry(*s, high, bytes.len());
        }
        self.set_free_high(high);
    }

    fn check_live(&self, slot: u16) -> Result<()> {
        if slot >= self.nslots() || self.slot_entry(slot).0 == 0 {
            return Err(StorageError::InvalidSlot { page: 0, slot });
        }
        Ok(())
    }

    /// Read-only accessor for the tuple in `slot`.
    pub fn get(&self, slot: u16) -> Result<&[u8]> {
        self.check_live(slot)?;
        let (off, len) = self.slot_entry(slot);
        Ok(&self.page.bytes()[off..off + len])
    }

    /// Iterates `(slot, tuple)` over live tuples in slot order.
    pub fn iter(&self) -> impl Iterator<Item = (u16, &[u8])> {
        let n = self.nslots();
        (0..n).filter_map(move |s| {
            let (off, len) = self.slot_entry(s);
            (off != 0).then(|| (s, &self.page.bytes()[off..off + len]))
        })
    }
}

impl<'a> SlottedPageRef<'a> {
    /// Wraps an already-initialized slotted page read-only.
    pub fn attach(page: &'a Page) -> Result<Self> {
        if page.read_u16(OFF_MAGIC) != MAGIC {
            return Err(StorageError::Corrupt("slotted page magic mismatch".into()));
        }
        Ok(SlottedPageRef { page })
    }

    fn nslots(&self) -> u16 {
        self.page.read_u16(OFF_NSLOTS)
    }

    fn slot_entry(&self, slot: u16) -> (usize, usize) {
        let base = SLOTTED_HEADER_SIZE + slot as usize * SLOT_ENTRY_SIZE;
        (self.page.read_u16(base) as usize, self.page.read_u16(base + 2) as usize)
    }

    /// Number of live tuples.
    pub fn live_count(&self) -> usize {
        self.page.read_u16(OFF_LIVE) as usize
    }

    /// Fraction of the page occupied by live content (see
    /// [`SlottedPage::fill_factor`]).
    pub fn fill_factor(&self) -> f64 {
        let mut used = SLOTTED_HEADER_SIZE;
        for s in 0..self.nslots() {
            let (off, len) = self.slot_entry(s);
            used += SLOT_ENTRY_SIZE;
            if off != 0 {
                used += len;
            }
        }
        used as f64 / self.page.size() as f64
    }

    /// Read-only accessor for the tuple in `slot`.
    pub fn get(&self, slot: u16) -> Result<&'a [u8]> {
        if slot >= self.nslots() || self.slot_entry(slot).0 == 0 {
            return Err(StorageError::InvalidSlot { page: 0, slot });
        }
        let (off, len) = self.slot_entry(slot);
        Ok(&self.page.bytes()[off..off + len])
    }

    /// Iterates `(slot, tuple)` over live tuples in slot order.
    pub fn iter(&self) -> impl Iterator<Item = (u16, &'a [u8])> + '_ {
        let n = self.nslots();
        (0..n).filter_map(move |s| {
            let (off, len) = self.slot_entry(s);
            (off != 0).then(|| (s, &self.page.bytes()[off..off + len]))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page() -> Page {
        Page::new(1024)
    }

    #[test]
    fn insert_and_get_round_trip() {
        let mut p = page();
        let mut sp = SlottedPage::init(&mut p);
        let a = sp.insert(b"hello").unwrap();
        let b = sp.insert(b"world!").unwrap();
        assert_eq!(sp.get(a).unwrap(), b"hello");
        assert_eq!(sp.get(b).unwrap(), b"world!");
        assert_eq!(sp.live_count(), 2);
    }

    #[test]
    fn delete_frees_slot_for_reuse() {
        let mut p = page();
        let mut sp = SlottedPage::init(&mut p);
        let a = sp.insert(b"aaaa").unwrap();
        let _b = sp.insert(b"bbbb").unwrap();
        sp.delete(a).unwrap();
        assert!(sp.get(a).is_err());
        let c = sp.insert(b"cccc").unwrap();
        assert_eq!(c, a, "dead slot should be reused");
        assert_eq!(sp.get(c).unwrap(), b"cccc");
    }

    #[test]
    fn update_in_place_and_grow() {
        let mut p = page();
        let mut sp = SlottedPage::init(&mut p);
        let a = sp.insert(b"0123456789").unwrap();
        sp.update(a, b"xy").unwrap();
        assert_eq!(sp.get(a).unwrap(), b"xy");
        sp.update(a, b"a-much-longer-tuple-value").unwrap();
        assert_eq!(sp.get(a).unwrap(), b"a-much-longer-tuple-value");
    }

    #[test]
    fn page_full_reported() {
        let mut p = Page::new(128);
        let mut sp = SlottedPage::init(&mut p);
        // fill with 16-byte tuples until full
        let mut n = 0;
        while sp.insert(&[7u8; 16]).is_ok() {
            n += 1;
        }
        assert!(n >= 4, "expected a few inserts to fit, got {n}");
        match sp.insert(&[7u8; 16]) {
            Err(StorageError::PageFull { .. }) => {}
            other => panic!("expected PageFull, got {other:?}"),
        }
    }

    #[test]
    fn tuple_too_large_rejected() {
        let mut p = page();
        let mut sp = SlottedPage::init(&mut p);
        let big = vec![1u8; 2000];
        assert!(matches!(sp.insert(&big), Err(StorageError::TupleTooLarge { .. })));
    }

    #[test]
    fn compact_reclaims_dead_bytes() {
        let mut p = page();
        let mut sp = SlottedPage::init(&mut p);
        let mut slots = Vec::new();
        for i in 0..10 {
            slots.push(sp.insert(&[i as u8; 50]).unwrap());
        }
        let before = sp.free_space();
        for s in slots.iter().step_by(2) {
            sp.delete(*s).unwrap();
        }
        sp.compact();
        let after = sp.free_space();
        assert!(after >= before + 5 * 50 - SLOT_ENTRY_SIZE, "before={before} after={after}");
        // survivors intact
        for (i, s) in slots.iter().enumerate() {
            if i % 2 == 1 {
                assert_eq!(sp.get(*s).unwrap(), &[i as u8; 50][..]);
            }
        }
    }

    #[test]
    fn fill_factor_tracks_occupancy() {
        let mut p = page();
        let mut sp = SlottedPage::init(&mut p);
        let empty = sp.fill_factor();
        assert!(empty < 0.05);
        for _ in 0..8 {
            sp.insert(&[9u8; 100]).unwrap();
        }
        let full = sp.fill_factor();
        assert!(full > 0.8, "fill factor {full}");
    }

    #[test]
    fn iter_yields_live_tuples_in_slot_order() {
        let mut p = page();
        let mut sp = SlottedPage::init(&mut p);
        let a = sp.insert(b"a").unwrap();
        let b = sp.insert(b"b").unwrap();
        let c = sp.insert(b"c").unwrap();
        sp.delete(b).unwrap();
        let got: Vec<_> = sp.iter().map(|(s, t)| (s, t.to_vec())).collect();
        assert_eq!(got, vec![(a, b"a".to_vec()), (c, b"c".to_vec())]);
    }

    #[test]
    fn attach_rejects_uninitialized_page() {
        let mut p = page();
        assert!(SlottedPage::attach(&mut p).is_err());
        let p2 = page();
        assert!(SlottedPageRef::attach(&p2).is_err());
    }

    #[test]
    fn readonly_view_matches_mutable_view() {
        let mut p = page();
        {
            let mut sp = SlottedPage::init(&mut p);
            sp.insert(b"alpha").unwrap();
            sp.insert(b"beta").unwrap();
        }
        let r = SlottedPageRef::attach(&p).unwrap();
        assert_eq!(r.live_count(), 2);
        assert_eq!(r.get(0).unwrap(), b"alpha");
        assert_eq!(r.iter().count(), 2);
    }

    #[test]
    fn empty_tuple_rejected() {
        let mut p = page();
        let mut sp = SlottedPage::init(&mut p);
        assert!(sp.insert(b"").is_err());
    }
}
