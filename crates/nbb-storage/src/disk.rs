//! Disk managers: the page-granular backing stores under the buffer pool.
//!
//! Three implementations:
//!
//! * [`InMemoryDisk`] — plain page store, zero simulated cost. The
//!   baseline substrate for unit tests.
//! * [`SimulatedDisk`] — page store plus an explicit latency model.
//!   Every read/write is charged a configurable number of simulated
//!   nanoseconds, accumulated in [`IoStats`]. This is the substitution
//!   for the paper's real disk (see DESIGN.md §4): Figures 2(b) and 3
//!   depend on the *ratio* between memory and disk access costs, which
//!   the model makes explicit and reproducible.
//! * [`FileDisk`] — a real file on the local filesystem, for runs that
//!   want actual I/O syscalls.

use crate::error::{Result, StorageError};
use crate::lockrank;
use crate::page::{Page, PageId};
use crate::stats::{AtomicIoStats, IoStats};
use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// Abstract page-granular backing store.
///
/// All methods take `&self`; implementations are internally synchronized
/// so a single disk can sit under a shared buffer pool.
///
/// # Concurrency expectations
///
/// The buffer pool issues `read`s *outside* its shard locks (the
/// overlapped-fault state machine) and `write`s from a background
/// write-behind flusher, so an implementation must expect **many
/// concurrent calls**, including several reads in flight at once.
/// Implementations that block (e.g. [`LatencyDisk`], [`FileDisk`])
/// should do so without holding an internal lock across the wait, or
/// they re-serialize the faults the pool just overlapped. The pool
/// guarantees it never issues two concurrent `write`s for the *same*
/// page, and never a `read` of a page concurrent with its own pending
/// write-behind write (queued bytes are served from memory instead) —
/// so per-page ordering is the pool's problem, not the disk's.
///
/// # Accounting
///
/// [`DiskManager::stats`] counts operations that reach the disk. Pool
/// misses served from the write-behind queue never get here, which is
/// what lets tests assert "N threads, one fault, exactly one read" via
/// [`IoStats`].
pub trait DiskManager: Send + Sync {
    /// Size in bytes of every page on this disk.
    fn page_size(&self) -> usize;

    /// Allocates a fresh zeroed page and returns its id.
    fn allocate(&self) -> Result<PageId>;

    /// Reads page `id` into `buf`.
    ///
    /// `buf` must have been created with this disk's page size.
    fn read(&self, id: PageId, buf: &mut Page) -> Result<()>;

    /// Writes `page` to page `id`.
    fn write(&self, id: PageId, page: &Page) -> Result<()>;

    /// Writes a batch of pages. The default implementation issues one
    /// [`DiskManager::write`] per entry, stopping at the first error;
    /// implementations with a cheaper bulk path (one lock acquisition,
    /// one syscall, one device round-trip) override it — the buffer
    /// pool's write-behind flusher drains its queue through this, so an
    /// override directly amortizes the background write path.
    ///
    /// Contract: callers never repeat a page id within one batch (the
    /// flusher claims each queue slot before batching), and a batch
    /// error makes no claim about which pages landed — callers must
    /// treat every page in the batch as unwritten and retry; page
    /// writes are idempotent, so re-writing a page that did land is
    /// harmless.
    fn write_many(&self, pages: &[(PageId, &Page)]) -> Result<()> {
        for (id, page) in pages {
            self.write(*id, page)?;
        }
        Ok(())
    }

    /// Reads a batch of pages, each into its paired buffer. The default
    /// implementation issues one [`DiskManager::read`] per entry,
    /// stopping at the first error; implementations with a cheaper bulk
    /// path (one lock acquisition, one syscall, one device round-trip)
    /// override it — the buffer pool's batch-fault path drains its
    /// misses through this, so an override directly amortizes cold
    /// scans and multi-point lookups.
    ///
    /// Contract (the read-side twin of [`DiskManager::write_many`]):
    /// callers never repeat a page id within one batch (the pool claims
    /// each `Loading` slot before batching), and a batch error makes no
    /// claim about which buffers were filled — callers must treat every
    /// page in the batch as unread and retry; page reads are
    /// idempotent, so re-reading a page that did land is harmless.
    fn read_many(&self, pages: &mut [(PageId, &mut Page)]) -> Result<()> {
        for (id, buf) in pages.iter_mut() {
            self.read(*id, buf)?;
        }
        Ok(())
    }

    /// Number of allocated pages.
    fn num_pages(&self) -> u64;

    /// I/O counters (reads, writes, simulated time).
    fn stats(&self) -> IoStats;

    /// Zeroes the I/O counters.
    fn reset_stats(&self);
}

/// Latency model for [`SimulatedDisk`].
///
/// Defaults approximate a 2011-era SATA drive, the hardware class behind
/// the paper's measurements: ~10 ms per random page read, ~10 ms writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiskModel {
    /// Simulated nanoseconds charged per page read.
    pub read_ns: u64,
    /// Simulated nanoseconds charged per page write.
    pub write_ns: u64,
}

impl Default for DiskModel {
    fn default() -> Self {
        DiskModel { read_ns: 10_000_000, write_ns: 10_000_000 }
    }
}

impl DiskModel {
    /// A model approximating a modern NVMe device (~80 µs random read).
    pub fn nvme() -> Self {
        DiskModel { read_ns: 80_000, write_ns: 20_000 }
    }

    /// A model with zero cost (useful to isolate CPU effects).
    pub fn free() -> Self {
        DiskModel { read_ns: 0, write_ns: 0 }
    }
}

/// In-memory page store with no cost model.
pub struct InMemoryDisk {
    page_size: usize,
    pages: Mutex<Vec<Box<[u8]>>>,
    stats: AtomicIoStats,
}

impl InMemoryDisk {
    /// Creates an empty disk with the given page size.
    pub fn new(page_size: usize) -> Self {
        InMemoryDisk {
            page_size,
            pages: Mutex::with_rank(lockrank::DISK_IO, Vec::new()),
            stats: AtomicIoStats::new(),
        }
    }
}

impl DiskManager for InMemoryDisk {
    fn page_size(&self) -> usize {
        self.page_size
    }

    fn allocate(&self) -> Result<PageId> {
        let mut pages = self.pages.lock();
        pages.push(vec![0u8; self.page_size].into_boxed_slice());
        Ok(PageId(pages.len() as u64 - 1))
    }

    fn read(&self, id: PageId, buf: &mut Page) -> Result<()> {
        let pages = self.pages.lock();
        let src = pages.get(id.0 as usize).ok_or(StorageError::PageNotFound(id.0))?;
        buf.bytes_mut().copy_from_slice(src);
        self.stats.record_read(0);
        Ok(())
    }

    fn write(&self, id: PageId, page: &Page) -> Result<()> {
        let mut pages = self.pages.lock();
        let dst = pages.get_mut(id.0 as usize).ok_or(StorageError::PageNotFound(id.0))?;
        dst.copy_from_slice(page.bytes());
        self.stats.record_write(0);
        Ok(())
    }

    /// Bulk override: the whole batch lands under **one** store-lock
    /// acquisition instead of one per page (the default impl's cost),
    /// which is exactly the round-trip amortization the write-behind
    /// flusher batches for.
    fn write_many(&self, pages: &[(PageId, &Page)]) -> Result<()> {
        let mut store = self.pages.lock();
        for (id, page) in pages {
            let dst = store.get_mut(id.0 as usize).ok_or(StorageError::PageNotFound(id.0))?;
            dst.copy_from_slice(page.bytes());
            self.stats.record_write(0);
        }
        Ok(())
    }

    /// Bulk override: the whole batch is served under **one** store-lock
    /// acquisition instead of one per page, mirroring `write_many`.
    fn read_many(&self, pages: &mut [(PageId, &mut Page)]) -> Result<()> {
        let store = self.pages.lock();
        for (id, buf) in pages.iter_mut() {
            let src = store.get(id.0 as usize).ok_or(StorageError::PageNotFound(id.0))?;
            buf.bytes_mut().copy_from_slice(src);
            self.stats.record_read(0);
        }
        Ok(())
    }

    fn num_pages(&self) -> u64 {
        self.pages.lock().len() as u64
    }

    fn stats(&self) -> IoStats {
        self.stats.snapshot()
    }

    fn reset_stats(&self) {
        self.stats.reset();
    }
}

/// In-memory page store that charges a [`DiskModel`] per operation.
///
/// The simulated clock only accumulates; nothing sleeps. Harnesses add
/// `stats().sim_total_ns()` to measured CPU time to produce end-to-end
/// cost figures (see `nbb-bench`).
pub struct SimulatedDisk {
    inner: InMemoryDisk,
    model: DiskModel,
    stats: AtomicIoStats,
}

impl SimulatedDisk {
    /// Creates a simulated disk with the given page size and cost model.
    pub fn new(page_size: usize, model: DiskModel) -> Self {
        SimulatedDisk { inner: InMemoryDisk::new(page_size), model, stats: AtomicIoStats::new() }
    }

    /// The cost model in effect.
    pub fn model(&self) -> DiskModel {
        self.model
    }
}

impl DiskManager for SimulatedDisk {
    fn page_size(&self) -> usize {
        self.inner.page_size()
    }

    fn allocate(&self) -> Result<PageId> {
        self.inner.allocate()
    }

    fn read(&self, id: PageId, buf: &mut Page) -> Result<()> {
        self.inner.read(id, buf)?;
        self.stats.record_read(self.model.read_ns);
        Ok(())
    }

    fn write(&self, id: PageId, page: &Page) -> Result<()> {
        self.inner.write(id, page)?;
        self.stats.record_write(self.model.write_ns);
        Ok(())
    }

    fn num_pages(&self) -> u64 {
        self.inner.num_pages()
    }

    fn stats(&self) -> IoStats {
        self.stats.snapshot()
    }

    fn reset_stats(&self) {
        self.stats.reset();
    }
}

/// In-memory page store that *actually blocks* for a [`DiskModel`] per
/// operation (contrast [`SimulatedDisk`], which only accounts).
///
/// Sleeping releases the CPU, so a blocked reader models DMA-style I/O:
/// other threads make progress during the wait. Concurrency benches use
/// this to expose what a lock held across a page fault really costs —
/// a single-stripe buffer pool stalls every reader for the full device
/// latency, a sharded one only the colliding stripe.
pub struct LatencyDisk {
    inner: InMemoryDisk,
    model: DiskModel,
    stats: AtomicIoStats,
}

impl LatencyDisk {
    /// Creates a blocking disk with the given page size and latency model.
    pub fn new(page_size: usize, model: DiskModel) -> Self {
        LatencyDisk { inner: InMemoryDisk::new(page_size), model, stats: AtomicIoStats::new() }
    }

    /// The latency model in effect.
    pub fn model(&self) -> DiskModel {
        self.model
    }

    fn block_for(ns: u64) {
        if ns > 0 {
            std::thread::sleep(std::time::Duration::from_nanos(ns));
        }
    }
}

impl DiskManager for LatencyDisk {
    fn page_size(&self) -> usize {
        self.inner.page_size()
    }

    fn allocate(&self) -> Result<PageId> {
        self.inner.allocate()
    }

    fn read(&self, id: PageId, buf: &mut Page) -> Result<()> {
        self.inner.read(id, buf)?;
        Self::block_for(self.model.read_ns);
        self.stats.record_read(self.model.read_ns);
        Ok(())
    }

    /// Bulk override modeling seek amortization: the whole batch blocks
    /// for **one** device latency instead of one per page (a single
    /// seek + sequential transfer). Accounting stays per page (`reads`
    /// climbs by the batch size) but only the first page carries the
    /// simulated latency, so `sim_read_ns` reflects the one seek.
    fn read_many(&self, pages: &mut [(PageId, &mut Page)]) -> Result<()> {
        self.inner.read_many(pages)?;
        Self::block_for(self.model.read_ns);
        for (i, _) in pages.iter().enumerate() {
            self.stats.record_read(if i == 0 { self.model.read_ns } else { 0 });
        }
        Ok(())
    }

    fn write(&self, id: PageId, page: &Page) -> Result<()> {
        self.inner.write(id, page)?;
        Self::block_for(self.model.write_ns);
        self.stats.record_write(self.model.write_ns);
        Ok(())
    }

    fn num_pages(&self) -> u64 {
        self.inner.num_pages()
    }

    fn stats(&self) -> IoStats {
        self.stats.snapshot()
    }

    fn reset_stats(&self) {
        self.stats.reset();
    }
}

/// File-backed page store issuing real positioned I/O.
pub struct FileDisk {
    page_size: usize,
    file: File,
    next_page: AtomicU64,
    stats: AtomicIoStats,
    #[cfg_attr(unix, allow(dead_code))] // only used by the non-unix seek path
    io_lock: Mutex<()>,
}

impl FileDisk {
    /// Creates (truncating) a disk file at `path`.
    pub fn create<P: AsRef<Path>>(path: P, page_size: usize) -> Result<Self> {
        let file =
            OpenOptions::new().read(true).write(true).create(true).truncate(true).open(path)?;
        Ok(FileDisk {
            page_size,
            file,
            next_page: AtomicU64::new(0),
            stats: AtomicIoStats::new(),
            io_lock: Mutex::with_rank(lockrank::DISK_IO, ()),
        })
    }

    #[cfg(unix)]
    fn pread(&self, off: u64, buf: &mut [u8]) -> Result<()> {
        use std::os::unix::fs::FileExt;
        self.file.read_exact_at(buf, off)?;
        Ok(())
    }

    #[cfg(unix)]
    fn pwrite(&self, off: u64, buf: &[u8]) -> Result<()> {
        use std::os::unix::fs::FileExt;
        self.file.write_all_at(buf, off)?;
        Ok(())
    }

    #[cfg(not(unix))]
    fn pread(&self, off: u64, buf: &mut [u8]) -> Result<()> {
        use std::io::{Read, Seek, SeekFrom};
        let _g = self.io_lock.lock();
        let mut f = &self.file;
        f.seek(SeekFrom::Start(off))?;
        f.read_exact(buf)?;
        Ok(())
    }

    #[cfg(not(unix))]
    fn pwrite(&self, off: u64, buf: &[u8]) -> Result<()> {
        use std::io::{Seek, SeekFrom, Write};
        let _g = self.io_lock.lock();
        let mut f = &self.file;
        f.seek(SeekFrom::Start(off))?;
        f.write_all(buf)?;
        Ok(())
    }
}

impl DiskManager for FileDisk {
    fn page_size(&self) -> usize {
        self.page_size
    }

    fn allocate(&self) -> Result<PageId> {
        let id = self.next_page.fetch_add(1, Ordering::SeqCst);
        // Extend the file with a zeroed page so reads of fresh pages work.
        let zeroes = vec![0u8; self.page_size];
        self.pwrite(id * self.page_size as u64, &zeroes)?;
        Ok(PageId(id))
    }

    fn read(&self, id: PageId, buf: &mut Page) -> Result<()> {
        if id.0 >= self.next_page.load(Ordering::SeqCst) {
            return Err(StorageError::PageNotFound(id.0));
        }
        self.pread(id.0 * self.page_size as u64, buf.bytes_mut())?;
        self.stats.record_read(0);
        Ok(())
    }

    fn write(&self, id: PageId, page: &Page) -> Result<()> {
        if id.0 >= self.next_page.load(Ordering::SeqCst) {
            return Err(StorageError::PageNotFound(id.0));
        }
        self.pwrite(id.0 * self.page_size as u64, page.bytes())?;
        self.stats.record_write(0);
        Ok(())
    }

    /// Bulk override: sorts the batch by page id and coalesces each run
    /// of *adjacent* ids into one contiguous buffer written with a
    /// single positioned write — one seek + one syscall per run instead
    /// of one per page (the write-behind flusher's drain batches are
    /// eviction-ordered, so sequential workloads produce long runs).
    /// The copy into the staging buffer is the price of the vectored
    /// write; gaps break a run and start a new one. Validation happens
    /// up front so a bad id fails the batch before any bytes land.
    fn write_many(&self, pages: &[(PageId, &Page)]) -> Result<()> {
        let next = self.next_page.load(Ordering::SeqCst);
        for (id, _) in pages {
            if id.0 >= next {
                return Err(StorageError::PageNotFound(id.0));
            }
        }
        let mut sorted: Vec<&(PageId, &Page)> = pages.iter().collect();
        sorted.sort_by_key(|(id, _)| *id);
        let mut run_start = 0;
        while run_start < sorted.len() {
            let mut run_end = run_start + 1;
            while run_end < sorted.len() && sorted[run_end].0 .0 == sorted[run_end - 1].0 .0 + 1 {
                run_end += 1;
            }
            let run = &sorted[run_start..run_end];
            if run.len() == 1 {
                let (id, page) = run[0];
                self.pwrite(id.0 * self.page_size as u64, page.bytes())?;
            } else {
                let mut buf = Vec::with_capacity(run.len() * self.page_size);
                for (_, page) in run {
                    buf.extend_from_slice(page.bytes());
                }
                self.pwrite(run[0].0 .0 * self.page_size as u64, &buf)?;
            }
            for _ in run {
                self.stats.record_write(0);
            }
            run_start = run_end;
        }
        Ok(())
    }

    /// Bulk override mirroring `write_many`: sorts the batch by page id
    /// and coalesces each run of *adjacent* ids into one contiguous
    /// staging buffer filled with a single positioned read — one seek +
    /// one syscall per run instead of one per page (cold scans fault
    /// leaves in allocation order, so sequential workloads produce long
    /// runs). The copy out of the staging buffer is the price of the
    /// vectored read; gaps break a run and start a new one. Validation
    /// happens up front so a bad id fails the batch before any buffer
    /// is touched.
    fn read_many(&self, pages: &mut [(PageId, &mut Page)]) -> Result<()> {
        let next = self.next_page.load(Ordering::SeqCst);
        for (id, _) in pages.iter() {
            if id.0 >= next {
                return Err(StorageError::PageNotFound(id.0));
            }
        }
        // Sort indices, not the entries: the buffers are mutable
        // borrows, so runs are discovered through an index permutation.
        let mut order: Vec<usize> = (0..pages.len()).collect();
        order.sort_by_key(|&i| pages[i].0);
        let mut run_start = 0;
        while run_start < order.len() {
            let mut run_end = run_start + 1;
            while run_end < order.len()
                && pages[order[run_end]].0 .0 == pages[order[run_end - 1]].0 .0 + 1
            {
                run_end += 1;
            }
            let run = &order[run_start..run_end];
            if run.len() == 1 {
                let (id, buf) = &mut pages[run[0]];
                self.pread(id.0 * self.page_size as u64, buf.bytes_mut())?;
            } else {
                let first = pages[run[0]].0 .0;
                let mut staging = vec![0u8; run.len() * self.page_size];
                self.pread(first * self.page_size as u64, &mut staging)?;
                for (k, &i) in run.iter().enumerate() {
                    let chunk = &staging[k * self.page_size..(k + 1) * self.page_size];
                    pages[i].1.bytes_mut().copy_from_slice(chunk);
                }
            }
            for _ in run {
                self.stats.record_read(0);
            }
            run_start = run_end;
        }
        Ok(())
    }

    fn num_pages(&self) -> u64 {
        self.next_page.load(Ordering::SeqCst)
    }

    fn stats(&self) -> IoStats {
        self.stats.snapshot()
    }

    fn reset_stats(&self) {
        self.stats.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(disk: &dyn DiskManager) {
        let a = disk.allocate().unwrap();
        let b = disk.allocate().unwrap();
        assert_ne!(a, b);
        let mut p = Page::new(disk.page_size());
        p.bytes_mut()[0] = 0xAA;
        p.bytes_mut()[disk.page_size() - 1] = 0xBB;
        disk.write(b, &p).unwrap();
        let mut out = Page::new(disk.page_size());
        disk.read(b, &mut out).unwrap();
        assert_eq!(out.bytes()[0], 0xAA);
        assert_eq!(out.bytes()[disk.page_size() - 1], 0xBB);
        // page `a` still zeroed
        disk.read(a, &mut out).unwrap();
        assert!(out.bytes().iter().all(|&x| x == 0));
    }

    #[test]
    fn in_memory_round_trip() {
        round_trip(&InMemoryDisk::new(512));
    }

    #[test]
    fn simulated_round_trip_and_cost() {
        let d = SimulatedDisk::new(512, DiskModel { read_ns: 100, write_ns: 10 });
        round_trip(&d);
        let s = d.stats();
        assert_eq!(s.reads, 2);
        assert_eq!(s.writes, 1);
        assert_eq!(s.sim_read_ns, 200);
        assert_eq!(s.sim_write_ns, 10);
    }

    #[test]
    fn file_disk_round_trip() {
        let dir = std::env::temp_dir().join(format!("nbb_disk_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pages.db");
        let d = FileDisk::create(&path, 512).unwrap();
        round_trip(&d);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn write_many_matches_point_writes() {
        // The InMemoryDisk override and the trait's default (exercised
        // through SimulatedDisk, which does not override) must both
        // land every page and count every write.
        let disks: [&dyn DiskManager; 2] = [
            &InMemoryDisk::new(512),
            &SimulatedDisk::new(512, DiskModel { read_ns: 0, write_ns: 5 }),
        ];
        for disk in disks {
            let ids: Vec<PageId> = (0..4).map(|_| disk.allocate().unwrap()).collect();
            let pages: Vec<Page> = (0..4)
                .map(|i| {
                    let mut p = Page::new(512);
                    p.bytes_mut()[0] = 100 + i as u8;
                    p
                })
                .collect();
            let batch: Vec<(PageId, &Page)> = ids.iter().copied().zip(pages.iter()).collect();
            disk.reset_stats();
            disk.write_many(&batch).unwrap();
            assert_eq!(disk.stats().writes, 4, "every batched write counted");
            let mut out = Page::new(512);
            for (i, id) in ids.iter().enumerate() {
                disk.read(*id, &mut out).unwrap();
                assert_eq!(out.bytes()[0], 100 + i as u8);
            }
        }
    }

    #[test]
    fn file_disk_write_many_coalesces_adjacent_runs() {
        // Gap/run mix, submitted unsorted: ids {0,1,2}, {5}, {7,8} must
        // land as three coalesced positioned writes covering every page
        // (write accounting stays per page), and the gap pages must
        // keep their prior contents.
        let dir = std::env::temp_dir().join(format!("nbb_disk_test_wm_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("coalesce.db");
        let d = FileDisk::create(&path, 512).unwrap();
        let ids: Vec<PageId> = (0..9).map(|_| d.allocate().unwrap()).collect();
        // Pre-mark the gap pages so we can prove the runs didn't bleed.
        for gap in [3u64, 4, 6] {
            let mut p = Page::new(512);
            p.bytes_mut()[0] = 0xEE;
            d.write(PageId(gap), &p).unwrap();
        }
        let batch_ids = [7u64, 0, 8, 2, 5, 1]; // unsorted on purpose
        let pages: Vec<Page> = batch_ids
            .iter()
            .map(|&id| {
                let mut p = Page::new(512);
                p.bytes_mut()[0] = 0x40 + id as u8;
                p.bytes_mut()[511] = id as u8;
                p
            })
            .collect();
        let batch: Vec<(PageId, &Page)> =
            batch_ids.iter().map(|&id| PageId(id)).zip(pages.iter()).collect();
        d.reset_stats();
        d.write_many(&batch).unwrap();
        assert_eq!(d.stats().writes, 6, "accounting stays per page");
        let mut out = Page::new(512);
        for &id in &batch_ids {
            d.read(PageId(id), &mut out).unwrap();
            assert_eq!(out.bytes()[0], 0x40 + id as u8, "page {id}");
            assert_eq!(out.bytes()[511], id as u8, "page {id} tail");
        }
        for gap in [3u64, 4, 6] {
            d.read(PageId(gap), &mut out).unwrap();
            assert_eq!(out.bytes()[0], 0xEE, "gap page {gap} clobbered by a run");
        }
        let _ = ids;
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_disk_write_many_rejects_unallocated_ids_up_front() {
        let dir = std::env::temp_dir().join(format!("nbb_disk_test_wmv_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("validate.db");
        let d = FileDisk::create(&path, 512).unwrap();
        let a = d.allocate().unwrap();
        let q = Page::new(512);
        let batch = vec![(a, &q), (PageId(42), &q)];
        assert!(matches!(d.write_many(&batch), Err(StorageError::PageNotFound(42))));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn write_many_of_unallocated_page_errors() {
        let d = InMemoryDisk::new(512);
        let a = d.allocate().unwrap();
        let p = Page::new(512);
        let batch = vec![(a, &p), (PageId(99), &p)];
        assert!(matches!(d.write_many(&batch), Err(StorageError::PageNotFound(99))));
    }

    #[test]
    fn read_many_matches_point_reads() {
        // The InMemoryDisk override and the trait's default (exercised
        // through SimulatedDisk, which does not override) must both
        // fill every buffer and count every read.
        let disks: [&dyn DiskManager; 2] = [
            &InMemoryDisk::new(512),
            &SimulatedDisk::new(512, DiskModel { read_ns: 5, write_ns: 0 }),
        ];
        for disk in disks {
            let ids: Vec<PageId> = (0..4).map(|_| disk.allocate().unwrap()).collect();
            for (i, id) in ids.iter().enumerate() {
                let mut p = Page::new(512);
                p.bytes_mut()[0] = 100 + i as u8;
                disk.write(*id, &p).unwrap();
            }
            let mut bufs: Vec<Page> = (0..4).map(|_| Page::new(512)).collect();
            let mut batch: Vec<(PageId, &mut Page)> =
                ids.iter().copied().zip(bufs.iter_mut()).collect();
            disk.reset_stats();
            disk.read_many(&mut batch).unwrap();
            assert_eq!(disk.stats().reads, 4, "every batched read counted");
            for (i, buf) in bufs.iter().enumerate() {
                assert_eq!(buf.bytes()[0], 100 + i as u8);
            }
        }
    }

    #[test]
    fn file_disk_read_many_coalesces_adjacent_runs() {
        // Gap/run mix, submitted unsorted: ids {0,1,2}, {5}, {7,8} must
        // be served as three coalesced positioned reads covering every
        // page (read accounting stays per page), and each buffer must
        // receive its own page's bytes — not a neighbour's.
        let dir = std::env::temp_dir().join(format!("nbb_disk_test_rm_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("coalesce_read.db");
        let d = FileDisk::create(&path, 512).unwrap();
        for _ in 0..9 {
            d.allocate().unwrap();
        }
        for id in 0u64..9 {
            let mut p = Page::new(512);
            p.bytes_mut()[0] = 0x40 + id as u8;
            p.bytes_mut()[511] = id as u8;
            d.write(PageId(id), &p).unwrap();
        }
        let batch_ids = [7u64, 0, 8, 2, 5, 1]; // unsorted on purpose
        let mut bufs: Vec<Page> = batch_ids.iter().map(|_| Page::new(512)).collect();
        let mut batch: Vec<(PageId, &mut Page)> =
            batch_ids.iter().map(|&id| PageId(id)).zip(bufs.iter_mut()).collect();
        d.reset_stats();
        d.read_many(&mut batch).unwrap();
        assert_eq!(d.stats().reads, 6, "accounting stays per page");
        for (k, &id) in batch_ids.iter().enumerate() {
            assert_eq!(bufs[k].bytes()[0], 0x40 + id as u8, "page {id}");
            assert_eq!(bufs[k].bytes()[511], id as u8, "page {id} tail");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_disk_read_many_rejects_unallocated_ids_up_front() {
        let dir = std::env::temp_dir().join(format!("nbb_disk_test_rmv_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("validate_read.db");
        let d = FileDisk::create(&path, 512).unwrap();
        let a = d.allocate().unwrap();
        let mut p1 = Page::new(512);
        let mut p2 = Page::new(512);
        let mut batch = vec![(a, &mut p1), (PageId(42), &mut p2)];
        assert!(matches!(d.read_many(&mut batch), Err(StorageError::PageNotFound(42))));
        assert_eq!(d.stats().reads, 0, "validation fails before any read lands");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn read_many_of_unallocated_page_errors() {
        let d = InMemoryDisk::new(512);
        let a = d.allocate().unwrap();
        let mut p1 = Page::new(512);
        let mut p2 = Page::new(512);
        let mut batch = vec![(a, &mut p1), (PageId(99), &mut p2)];
        assert!(matches!(d.read_many(&mut batch), Err(StorageError::PageNotFound(99))));
    }

    #[test]
    fn latency_disk_read_many_charges_one_latency_per_batch() {
        let d = LatencyDisk::new(512, DiskModel { read_ns: 2_000_000, write_ns: 0 });
        let ids: Vec<PageId> = (0..4).map(|_| d.allocate().unwrap()).collect();
        for (i, id) in ids.iter().enumerate() {
            let mut p = Page::new(512);
            p.bytes_mut()[0] = i as u8 + 1;
            d.write(*id, &p).unwrap();
        }
        d.reset_stats();
        let mut bufs: Vec<Page> = (0..4).map(|_| Page::new(512)).collect();
        let mut batch: Vec<(PageId, &mut Page)> =
            ids.iter().copied().zip(bufs.iter_mut()).collect();
        let start = std::time::Instant::now();
        d.read_many(&mut batch).unwrap();
        assert!(
            start.elapsed() >= std::time::Duration::from_millis(2),
            "batch must block for one modeled latency"
        );
        for (i, buf) in bufs.iter().enumerate() {
            assert_eq!(buf.bytes()[0], i as u8 + 1);
        }
        let s = d.stats();
        assert_eq!(s.reads, 4, "accounting stays per page");
        assert_eq!(s.sim_read_ns, 2_000_000, "one seek charged for the whole batch");
    }

    #[test]
    fn read_of_unallocated_page_fails() {
        let d = InMemoryDisk::new(512);
        let mut p = Page::new(512);
        assert!(matches!(d.read(PageId(0), &mut p), Err(StorageError::PageNotFound(0))));
    }

    #[test]
    fn default_model_is_hdd_scale() {
        let m = DiskModel::default();
        assert_eq!(m.read_ns, 10_000_000);
        assert!(DiskModel::nvme().read_ns < m.read_ns);
        assert_eq!(DiskModel::free().read_ns, 0);
    }

    #[test]
    fn reset_stats_works() {
        let d = SimulatedDisk::new(512, DiskModel::default());
        let id = d.allocate().unwrap();
        let mut p = Page::new(512);
        d.read(id, &mut p).unwrap();
        assert_eq!(d.stats().reads, 1);
        d.reset_stats();
        assert_eq!(d.stats().reads, 0);
    }

    #[test]
    fn latency_disk_round_trips_and_blocks() {
        let d = LatencyDisk::new(512, DiskModel { read_ns: 2_000_000, write_ns: 0 });
        let id = d.allocate().unwrap();
        let mut w = Page::new(512);
        w.bytes_mut()[9] = 99;
        d.write(id, &w).unwrap();
        let start = std::time::Instant::now();
        let mut r = Page::new(512);
        d.read(id, &mut r).unwrap();
        assert!(
            start.elapsed() >= std::time::Duration::from_millis(2),
            "read must block for the modeled latency"
        );
        assert_eq!(r.bytes()[9], 99);
        let s = d.stats();
        assert_eq!((s.reads, s.writes), (1, 1));
        assert_eq!(s.sim_read_ns, 2_000_000);
    }
}
