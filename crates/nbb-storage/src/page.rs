//! Raw page buffers and page identifiers.
//!
//! A [`Page`] is a fixed-size, heap-allocated byte buffer. All higher-level
//! structures (slotted data pages, B+Tree nodes) are *views* over a `Page`.
//! The default page size is 8 KiB, matching common OLTP engines; every
//! consumer takes the page size from the buffer itself so non-default sizes
//! work throughout the stack.

use std::fmt;

/// Default page size in bytes (8 KiB).
pub const DEFAULT_PAGE_SIZE: usize = 8192;

/// Identifier of a page within a single backing store.
///
/// Page ids are dense, starting at 0, in allocation order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u64);

impl PageId {
    /// Sentinel used in on-page headers for "no page" (e.g. absent sibling).
    pub const INVALID: PageId = PageId(u64::MAX);

    /// Returns true unless this is the [`PageId::INVALID`] sentinel.
    #[inline]
    pub fn is_valid(self) -> bool {
        self != Self::INVALID
    }
}

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// A fixed-size page buffer.
///
/// Pages are always zero-initialized on creation; a zeroed buffer is the
/// canonical "empty" state every structural view must tolerate.
#[derive(Clone, PartialEq, Eq)]
pub struct Page {
    data: Box<[u8]>,
}

impl Page {
    /// Allocates a zeroed page of `size` bytes.
    ///
    /// # Panics
    /// Panics if `size < 128`: no on-page structure fits below that.
    pub fn new(size: usize) -> Self {
        assert!(size >= 128, "page size {size} too small (minimum 128)");
        Page { data: vec![0u8; size].into_boxed_slice() }
    }

    /// Allocates a zeroed page of [`DEFAULT_PAGE_SIZE`] bytes.
    pub fn default_size() -> Self {
        Self::new(DEFAULT_PAGE_SIZE)
    }

    /// Builds a page from an existing buffer (e.g. read from disk).
    pub fn from_bytes(data: Box<[u8]>) -> Self {
        assert!(data.len() >= 128, "page size {} too small", data.len());
        Page { data }
    }

    /// Size of this page in bytes.
    #[inline]
    pub fn size(&self) -> usize {
        self.data.len()
    }

    /// Read-only view of the full buffer.
    #[inline]
    pub fn bytes(&self) -> &[u8] {
        &self.data
    }

    /// Mutable view of the full buffer.
    #[inline]
    pub fn bytes_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }

    /// Zeroes the whole buffer.
    pub fn clear(&mut self) {
        self.data.fill(0);
    }

    /// Reads a little-endian `u16` at `off`.
    #[inline]
    pub fn read_u16(&self, off: usize) -> u16 {
        // nbb-lint: allow(unwrap, slice is exactly the integer's width)
        u16::from_le_bytes(self.data[off..off + 2].try_into().unwrap())
    }

    /// Writes a little-endian `u16` at `off`.
    #[inline]
    pub fn write_u16(&mut self, off: usize, v: u16) {
        self.data[off..off + 2].copy_from_slice(&v.to_le_bytes());
    }

    /// Reads a little-endian `u32` at `off`.
    #[inline]
    pub fn read_u32(&self, off: usize) -> u32 {
        // nbb-lint: allow(unwrap, slice is exactly the integer's width)
        u32::from_le_bytes(self.data[off..off + 4].try_into().unwrap())
    }

    /// Writes a little-endian `u32` at `off`.
    #[inline]
    pub fn write_u32(&mut self, off: usize, v: u32) {
        self.data[off..off + 4].copy_from_slice(&v.to_le_bytes());
    }

    /// Reads a little-endian `u64` at `off`.
    #[inline]
    pub fn read_u64(&self, off: usize) -> u64 {
        // nbb-lint: allow(unwrap, slice is exactly the integer's width)
        u64::from_le_bytes(self.data[off..off + 8].try_into().unwrap())
    }

    /// Writes a little-endian `u64` at `off`.
    #[inline]
    pub fn write_u64(&mut self, off: usize, v: u64) {
        self.data[off..off + 8].copy_from_slice(&v.to_le_bytes());
    }
}

impl fmt::Debug for Page {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let live = self.data.iter().filter(|&&b| b != 0).count();
        write!(f, "Page({} bytes, {} nonzero)", self.data.len(), live)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_page_is_zeroed() {
        let p = Page::new(512);
        assert_eq!(p.size(), 512);
        assert!(p.bytes().iter().all(|&b| b == 0));
    }

    #[test]
    fn default_size_matches_constant() {
        assert_eq!(Page::default_size().size(), DEFAULT_PAGE_SIZE);
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn rejects_tiny_pages() {
        let _ = Page::new(64);
    }

    #[test]
    fn integer_round_trips() {
        let mut p = Page::new(256);
        p.write_u16(0, 0xBEEF);
        p.write_u32(10, 0xDEAD_BEEF);
        p.write_u64(100, u64::MAX - 3);
        assert_eq!(p.read_u16(0), 0xBEEF);
        assert_eq!(p.read_u32(10), 0xDEAD_BEEF);
        assert_eq!(p.read_u64(100), u64::MAX - 3);
    }

    #[test]
    fn clear_zeroes_everything() {
        let mut p = Page::new(256);
        p.bytes_mut().fill(0xFF);
        p.clear();
        assert!(p.bytes().iter().all(|&b| b == 0));
    }

    #[test]
    fn invalid_page_id_sentinel() {
        assert!(!PageId::INVALID.is_valid());
        assert!(PageId(0).is_valid());
        assert_eq!(PageId(42).to_string(), "P42");
    }

    #[test]
    fn from_bytes_preserves_content() {
        let buf = vec![7u8; 256].into_boxed_slice();
        let p = Page::from_bytes(buf);
        assert!(p.bytes().iter().all(|&b| b == 7));
    }
}
