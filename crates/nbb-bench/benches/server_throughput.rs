//! End-to-end pipelining comparison over the network front door: the
//! same connection fleet at depth 1 (strict request/response) versus
//! deeper pipelines, against a latency-modeled disk. Depth-K lets K
//! faults' device waits overlap across the server's worker pool where
//! depth-1 pays them serially — the wire twin of the engine's batched
//! read amortization.
//!
//! `cargo bench -p nbb-bench --bench server_throughput`

use nbb_bench::report::{f, print_table};
use nbb_bench::serverload::{run, LoadSpec, READ_NS};

fn main() {
    let base = LoadSpec {
        rows: 50_000,
        conns: 2,
        depth: 1,
        ops_per_conn: 200,
        keys_per_op: 4,
        workers: 8,
    };
    let runs: Vec<_> =
        [1usize, 4, 16].iter().map(|&depth| run(LoadSpec { depth, ..base })).collect();

    let mut table = Vec::new();
    for r in &runs {
        table.push(vec![
            r.spec.depth.to_string(),
            f(r.requests_per_s(), 1),
            f(r.rows_per_s(), 1),
            f(r.elapsed.as_secs_f64() * 1e3, 1),
            r.stats.queue_full_parks.to_string(),
        ]);
    }
    print_table(
        &format!(
            "pipelined get_many over loopback, {} conns x {} ops @ {} us/fault",
            base.conns,
            base.ops_per_conn,
            READ_NS / 1000
        ),
        &["depth", "req_s", "rows_s", "ms", "parks"],
        &table,
    );

    let ratio = runs[runs.len() - 1].requests_per_s() / runs[0].requests_per_s();
    println!(
        "\npipelining speedup: {ratio:.1}x (depth {} vs depth 1, equal conns)",
        runs[runs.len() - 1].spec.depth
    );
    assert!(
        ratio >= 2.0,
        "depth-16 pipelining must deliver >= 2x depth-1 throughput, got {ratio:.2}x"
    );
}
