//! Batched vs point reads: N `get` calls against one `get_many` over
//! hot Zipf keys.
//!
//! Three rungs of the same 1024-key workload, hottest first in savings:
//!
//! * `point_via_name/1024` — the old string-keyed API: every call pays
//!   the index-name lookup through the table's `RwLock<HashMap>`, a
//!   tree-structure-lock acquisition, a full root-to-leaf descent, and
//!   per-key buffer-pool lock round-trips.
//! * `point_via_handle/1024` — an `IndexRef` resolved once: name lookup
//!   gone, everything else still per key.
//! * `get_many/1024` — the batched path: one structure-lock
//!   acquisition, keys sorted so each distinct leaf is visited once,
//!   heap chases grouped per page and per pool shard.
//!
//! The headline ratio (point-loop time / `get_many` time) is printed at
//! the end so perf trajectories can be recorded from the bench output.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nbb_core::db::{Database, DbConfig};
use nbb_core::table::{FieldSpec, IndexSpec, Table};
use nbb_workload::ScrambledZipf;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Instant;

const ROWS: u64 = 50_000;
const BATCH: usize = 1024;
const ZIPF_ALPHA: f64 = 1.1;
/// Distinct pre-sampled batches; iterations cycle through them so the
/// access stream varies without paying sampling cost inside the timer.
const BATCHES: usize = 16;

/// 24-byte tuple: key(8) | value(8) | filler(8).
fn tuple(key: u64, value: u64) -> Vec<u8> {
    let mut t = Vec::with_capacity(24);
    t.extend_from_slice(&key.to_be_bytes());
    t.extend_from_slice(&value.to_le_bytes());
    t.extend_from_slice(&[0u8; 8]);
    t
}

fn build_table(db: &Database) -> Arc<Table> {
    let t = db.create_table("t", 24).unwrap();
    for k in 0..ROWS {
        t.insert(&tuple(k, k.wrapping_mul(3))).unwrap();
    }
    t.create_index(IndexSpec::cached("pk", FieldSpec::new(0, 8), vec![FieldSpec::new(8, 8)]))
        .unwrap();
    t
}

/// Pre-samples `BATCHES` batches of `BATCH` hot Zipf keys each.
fn sample_batches() -> Vec<Vec<[u8; 8]>> {
    let zipf = ScrambledZipf::new(ROWS, ZIPF_ALPHA, 0x5eed);
    let mut rng = SmallRng::seed_from_u64(42);
    (0..BATCHES)
        .map(|_| (0..BATCH).map(|_| zipf.sample(&mut rng).to_be_bytes()).collect())
        .collect()
}

fn checksum(tuples: &[Option<Vec<u8>>]) -> u64 {
    tuples
        .iter()
        .flatten()
        .map(|t| u64::from_le_bytes(t[8..16].try_into().unwrap()))
        .fold(0u64, u64::wrapping_add)
}

fn bench_batched_reads(c: &mut Criterion) {
    let db = Database::open(DbConfig::default());
    let t = build_table(&db);
    let batches = sample_batches();
    // Warm pools and cache so all three rungs run resident.
    for batch in &batches {
        black_box(t.index("pk").unwrap().get_many(batch).unwrap());
    }

    let mut group = c.benchmark_group("batched_reads");
    group.throughput(Throughput::Elements(BATCH as u64));

    let mut cycle = 0usize;
    group.bench_function(BenchmarkId::new("point_via_name", BATCH), |b| {
        b.iter(|| {
            let batch = &batches[cycle % BATCHES];
            cycle += 1;
            let mut acc = 0u64;
            for key in batch {
                if let Some(tu) = t.get_via_index("pk", key).unwrap() {
                    acc = acc.wrapping_add(u64::from_le_bytes(tu[8..16].try_into().unwrap()));
                }
            }
            acc
        })
    });

    let pk = t.index("pk").unwrap();
    let mut cycle = 0usize;
    group.bench_function(BenchmarkId::new("point_via_handle", BATCH), |b| {
        b.iter(|| {
            let batch = &batches[cycle % BATCHES];
            cycle += 1;
            let mut acc = 0u64;
            for key in batch {
                if let Some(tu) = pk.get(key).unwrap() {
                    acc = acc.wrapping_add(u64::from_le_bytes(tu[8..16].try_into().unwrap()));
                }
            }
            acc
        })
    });

    let mut cycle = 0usize;
    group.bench_function(BenchmarkId::new("get_many", BATCH), |b| {
        b.iter(|| {
            let batch = &batches[cycle % BATCHES];
            cycle += 1;
            checksum(&pk.get_many(batch).unwrap())
        })
    });
    group.finish();

    // Headline ratio, measured back to back over identical batches.
    const REPS: usize = 30;
    let mut sink = 0u64;
    let start = Instant::now();
    for r in 0..REPS {
        for key in &batches[r % BATCHES] {
            if let Some(tu) = t.get_via_index("pk", key).unwrap() {
                sink = sink.wrapping_add(u64::from_le_bytes(tu[8..16].try_into().unwrap()));
            }
        }
    }
    let point = start.elapsed();
    let start = Instant::now();
    for r in 0..REPS {
        sink = sink.wrapping_add(checksum(&pk.get_many(&batches[r % BATCHES]).unwrap()));
    }
    let batched = start.elapsed();
    black_box(sink);
    println!(
        "batched_reads ratio: {BATCH} point gets take {:.2}x one get_many \
         ({:.1}us vs {:.1}us per batch, Zipf alpha={ZIPF_ALPHA}, {ROWS} rows)",
        point.as_secs_f64() / batched.as_secs_f64(),
        point.as_secs_f64() * 1e6 / REPS as f64,
        batched.as_secs_f64() * 1e6 / REPS as f64,
    );
    assert!(
        batched < point,
        "get_many must beat the equivalent point-call loop ({batched:?} vs {point:?})"
    );
}

criterion_group!(benches, bench_batched_reads);
criterion_main!(benches);
