//! Storage substrate benchmarks: slotted pages, heap files, buffer pool.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use nbb_storage::{
    BufferPool, DiskManager, HeapFile, InMemoryDisk, Page, SlottedPage, SlottedPageRef,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

fn bench_slotted(c: &mut Criterion) {
    c.bench_function("slotted_insert_100B_until_full", |b| {
        b.iter(|| {
            let mut p = Page::new(8192);
            let mut sp = SlottedPage::init(&mut p);
            let mut n = 0;
            while sp.insert(&[7u8; 100]).is_ok() {
                n += 1;
            }
            black_box(n)
        })
    });
    let mut p = Page::new(8192);
    let mut n = 0u16;
    {
        let mut sp = SlottedPage::init(&mut p);
        while sp.insert(&[7u8; 100]).is_ok() {
            n += 1;
        }
    }
    let mut rng = SmallRng::seed_from_u64(1);
    c.bench_function("slotted_get", |b| {
        b.iter(|| {
            let sp = SlottedPageRef::attach(&p).unwrap();
            black_box(sp.get(rng.gen_range(0..n)).unwrap()[0])
        })
    });
}

fn bench_heap(c: &mut Criterion) {
    let mut group = c.benchmark_group("heap");
    group.sample_size(10);
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("insert_10k_100B", |b| {
        b.iter(|| {
            let disk: Arc<dyn DiskManager> = Arc::new(InMemoryDisk::new(8192));
            let heap = HeapFile::create(Arc::new(BufferPool::new(disk, 512))).unwrap();
            for i in 0..10_000u64 {
                heap.insert(&[i as u8; 100]).unwrap();
            }
            black_box(heap.page_count())
        })
    });
    group.finish();

    let disk: Arc<dyn DiskManager> = Arc::new(InMemoryDisk::new(8192));
    let heap = HeapFile::create(Arc::new(BufferPool::new(disk, 512))).unwrap();
    let rids: Vec<_> = (0..10_000u64).map(|i| heap.insert(&[i as u8; 100]).unwrap()).collect();
    let mut rng = SmallRng::seed_from_u64(2);
    c.bench_function("heap_get_resident", |b| {
        b.iter(|| {
            let rid = rids[rng.gen_range(0..rids.len())];
            black_box(heap.with_tuple(rid, |t| t[0]).unwrap())
        })
    });
}

fn bench_buffer_pool(c: &mut Criterion) {
    let disk: Arc<dyn DiskManager> = Arc::new(InMemoryDisk::new(8192));
    let pool = Arc::new(BufferPool::new(Arc::clone(&disk), 256));
    let ids: Vec<_> = (0..256).map(|_| pool.new_page().unwrap()).collect();
    for id in &ids {
        pool.with_page(*id, |_| ()).unwrap();
    }
    let mut rng = SmallRng::seed_from_u64(3);
    c.bench_function("pool_hit", |b| {
        b.iter(|| {
            let id = ids[rng.gen_range(0..ids.len())];
            black_box(pool.with_page(id, |p| p.bytes()[0]).unwrap())
        })
    });
    // Thrashing pool: every access likely evicts.
    let pool2 = Arc::new(BufferPool::new(disk, 8));
    let ids2: Vec<_> = (0..256).map(|_| pool2.new_page().unwrap()).collect();
    c.bench_function("pool_miss_evict", |b| {
        b.iter(|| {
            let id = ids2[rng.gen_range(0..ids2.len())];
            black_box(pool2.with_page(id, |p| p.bytes()[0]).unwrap())
        })
    });
}

fn short() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench_slotted, bench_heap, bench_buffer_pool
}
criterion_main!(benches);
