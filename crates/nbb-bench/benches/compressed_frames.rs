//! Compressed cold frames: spend CPU to multiply the buffer pool.
//!
//! A Zipf-skewed read workload over a working set **2× the frame
//! count** runs against a blocking [`LatencyDisk`], once with the
//! compressed frame tier off (`budget = 0` — every capacity miss pays
//! the modeled device read) and once with a budget big enough to hold
//! the overflow compressed. The pages carry FOR-friendly content
//! (smooth u64 sequences, the paper's "small dynamic range" case), so
//! the tier holds the cold half of the working set in a fraction of its
//! raw bytes and a refault costs one in-memory decompression instead of
//! a device read.
//!
//! Printed: raw vs effective hit rate for both modes, the achieved
//! compression ratio, and the throughput multiple. Asserted (the
//! acceptance bar for the tier): the effective hit rate must *improve*
//! over the tierless run, and throughput must be at least
//! [`MIN_SPEEDUP`]× — CPU spent compressing must buy back more than it
//! costs whenever the device is slower than the codec.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use nbb_storage::{BufferPool, DiskManager, DiskModel, LatencyDisk, PageId};
use nbb_workload::ScrambledZipf;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Frames in the (single-stripe) pool.
const FRAMES: usize = 64;
/// Working-set pages — 2× the pool, so half the set is always cold.
const PAGES: u64 = 2 * FRAMES as u64;
/// Modeled device read latency (writes are free so the read path is
/// isolated). A 4 KiB decompression costs single-digit microseconds;
/// anything slower than this mid-range SSD read loses to the codec.
const READ_NS: u64 = 250_000;
/// Tier budget: comfortably holds the cold half even stored raw.
const BUDGET: usize = 512 * 1024;
/// Zipf skew — hot head resident, long tail churning through eviction.
const ALPHA: f64 = 0.8;
const WARMUP_OPS: usize = 1_024;
const TIMED_OPS: usize = 2_048;
/// Acceptance bar: tier-on throughput must be at least this multiple.
const MIN_SPEEDUP: f64 = 1.2;

struct Pass {
    throughput_ops_s: f64,
    raw_hit_rate: f64,
    effective_hit_rate: f64,
    compression_ratio: f64,
    disk_reads_avoided: u64,
}

fn rig(budget: usize) -> (BufferPool, Vec<PageId>) {
    let model = DiskModel { read_ns: READ_NS, write_ns: 0 };
    let disk: Arc<dyn DiskManager> = Arc::new(LatencyDisk::new(4096, model));
    // Write-behind off: dirty evictions write synchronously (free under
    // the model), so the timed phase measures the read path alone.
    let pool = BufferPool::with_options(disk, FRAMES, 1, 0, budget);
    let ids: Vec<PageId> = (0..PAGES).map(|_| pool.new_page().unwrap()).collect();
    // FOR-friendly content: per-page smooth u64 ramps (id-salted so
    // pages are distinct), the codec's best case.
    for (i, id) in ids.iter().enumerate() {
        pool.with_page_mut(*id, |p| {
            let base = (i as u64) << 20;
            for (j, w) in p.bytes_mut().chunks_exact_mut(8).enumerate() {
                w.copy_from_slice(&(base + j as u64 * 3).to_be_bytes());
            }
        })
        .unwrap();
    }
    pool.flush_all().unwrap();
    (pool, ids)
}

/// One measured run: warm up the clock + tier on the Zipf stream, let
/// the compressor settle behind the flush barrier, then time the same
/// stream shape. Both modes consume identical access sequences (fixed
/// seeds) so the comparison is access-for-access.
fn run(budget: usize) -> Pass {
    let (pool, ids) = rig(budget);
    let zipf = ScrambledZipf::new(PAGES, ALPHA, 0xC0FFEE);
    let mut rng = SmallRng::seed_from_u64(42);
    let mut sink = 0u64;
    for _ in 0..WARMUP_OPS {
        let i = zipf.sample(&mut rng) as usize;
        sink ^= pool.with_page(ids[i], |p| u64::from(p.bytes()[9])).unwrap();
    }
    pool.flush_all().unwrap(); // drains the compressor queue
    pool.reset_stats();

    let start = Instant::now();
    for _ in 0..TIMED_OPS {
        let i = zipf.sample(&mut rng) as usize;
        sink ^= pool.with_page(ids[i], |p| u64::from(p.bytes()[9])).unwrap();
    }
    let elapsed = start.elapsed();
    black_box(sink);

    let s = pool.stats();
    Pass {
        throughput_ops_s: TIMED_OPS as f64 / elapsed.as_secs_f64(),
        raw_hit_rate: s.hit_rate(),
        effective_hit_rate: s.effective_hit_rate(),
        compression_ratio: s.compression_ratio(),
        disk_reads_avoided: s.compressed_hits,
    }
}

fn bench_compressed_frames(c: &mut Criterion) {
    let mut group = c.benchmark_group("zipf_reads_2x_working_set");
    group.sample_size(10);
    for (label, budget) in [("tier_off", 0usize), ("tier_on", BUDGET)] {
        let (pool, ids) = rig(budget);
        let zipf = ScrambledZipf::new(PAGES, ALPHA, 0xC0FFEE);
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            let mut rng = SmallRng::seed_from_u64(7);
            b.iter(|| {
                let i = zipf.sample(&mut rng) as usize;
                black_box(pool.with_page(ids[i], |p| u64::from(p.bytes()[9])).unwrap())
            })
        });
    }
    group.finish();

    // Headline comparison outside criterion's adaptive loop.
    let off = run(0);
    let on = run(BUDGET);
    let speedup = on.throughput_ops_s / off.throughput_ops_s;
    println!(
        "compressed_frames: tier off {:.0} ops/s at {:.1}% hits | tier on {:.0} ops/s at \
         {:.1}% raw / {:.1}% effective hits ({} device reads became decompressions, \
         {:.2}x compression ratio) -> {speedup:.2}x throughput",
        off.throughput_ops_s,
        off.raw_hit_rate * 100.0,
        on.throughput_ops_s,
        on.raw_hit_rate * 100.0,
        on.effective_hit_rate * 100.0,
        on.disk_reads_avoided,
        on.compression_ratio,
    );
    assert!(
        on.effective_hit_rate > off.effective_hit_rate,
        "the tier must lift the effective hit rate: {:.3} vs {:.3} without it",
        on.effective_hit_rate,
        off.effective_hit_rate
    );
    assert!(
        speedup >= MIN_SPEEDUP,
        "compressing cold frames must beat rereading them: {speedup:.2}x < {MIN_SPEEDUP}x bar"
    );
}

fn short() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300))
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench_compressed_frames
}
criterion_main!(benches);
