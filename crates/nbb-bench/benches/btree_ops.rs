//! B+Tree operation benchmarks: insert, search, scan, bulk load.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nbb_btree::{BTree, BTreeOptions};
use nbb_storage::{BufferPool, DiskManager, InMemoryDisk};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

fn pool(frames: usize) -> Arc<BufferPool> {
    let disk: Arc<dyn DiskManager> = Arc::new(InMemoryDisk::new(8192));
    Arc::new(BufferPool::new(disk, frames))
}

fn loaded_tree(n: u64) -> BTree {
    BTree::bulk_load(
        pool(4096),
        8,
        BTreeOptions::default(),
        (0..n).map(|i| (i.to_be_bytes().to_vec(), i)),
        0.68,
    )
    .unwrap()
}

fn bench_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("btree_insert");
    group.sample_size(10);
    for &n in &[10_000u64, 100_000] {
        group.throughput(Throughput::Elements(n));
        group.bench_function(BenchmarkId::from_parameter(n), |b| {
            b.iter(|| {
                let tree = BTree::create(pool(4096), 8, BTreeOptions::default()).unwrap();
                let mut x = 0x9E3779B97F4A7C15u64;
                for _ in 0..n {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    tree.insert(&x.to_be_bytes(), x).unwrap();
                }
                black_box(tree)
            })
        });
    }
    group.finish();
}

fn bench_search(c: &mut Criterion) {
    let tree = loaded_tree(100_000);
    let mut rng = SmallRng::seed_from_u64(7);
    c.bench_function("btree_point_get_100k", |b| {
        b.iter(|| {
            let k = (rng.gen::<u64>() % 100_000).to_be_bytes();
            black_box(tree.get(black_box(&k)).unwrap())
        })
    });
}

fn bench_scan(c: &mut Criterion) {
    let tree = loaded_tree(100_000);
    c.bench_function("btree_scan_1000", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            let mut left = 1000;
            tree.scan_from(&50_000u64.to_be_bytes(), |_, v| {
                acc = acc.wrapping_add(v);
                left -= 1;
                left > 0
            })
            .unwrap();
            black_box(acc)
        })
    });
}

fn bench_bulk_load(c: &mut Criterion) {
    let mut group = c.benchmark_group("btree_bulk_load");
    group.sample_size(10);
    group.throughput(Throughput::Elements(100_000));
    for &fill in &[0.45f64, 0.68, 1.0] {
        group.bench_function(BenchmarkId::from_parameter(fill), |b| {
            b.iter(|| {
                black_box(
                    BTree::bulk_load(
                        pool(4096),
                        8,
                        BTreeOptions::default(),
                        (0..100_000u64).map(|i| (i.to_be_bytes().to_vec(), i)),
                        fill,
                    )
                    .unwrap(),
                )
            })
        });
    }
    group.finish();
}

fn short() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench_insert, bench_search, bench_scan, bench_bulk_load
}
criterion_main!(benches);
