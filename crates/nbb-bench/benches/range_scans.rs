//! Cold sequential range scans: cursor readahead vs. none over a slow
//! device.
//!
//! The workload is one ordered scan of the whole table through a cached
//! index whose leaves start on disk (the pool is swept cold first). The
//! device is a [`LatencyDisk`] charging 250 µs per round-trip — and,
//! crucially, 250 µs per *batch*, the way a real device amortizes a
//! queue of adjacent requests. Without readahead the cursor pays one
//! round-trip per leaf; with `DbConfig::readahead` set, every refill
//! batch-loads the next K leaves in one `read_many`, so the scan pays
//! one round-trip per K leaves.
//!
//! Two assertions gate the run (this bench is CI-run, not just built):
//!
//! * readahead-on must scan at **>= 3x** the rows/sec of readahead-off;
//! * `readahead: 0` and `readahead: K` runs of the identical workload
//!   must persist **byte-for-byte identical** disks — speculation is
//!   read-only and must never perturb durable state (which also makes
//!   `readahead: 0` behavior-identical to the pre-readahead engine).

use nbb_core::db::{Database, DbConfig};
use nbb_core::table::{FieldSpec, IndexSpec};
use nbb_storage::{DiskManager, DiskModel, LatencyDisk, Page, PageId, PoolStats};
use std::sync::Arc;
use std::time::{Duration, Instant};

const ROWS: u64 = 10_000;
/// One device round-trip: 250 µs, a mid-range networked-storage figure.
const READ_NS: u64 = 250_000;
const READAHEAD: usize = 32;
const PAGE_SIZE: usize = 4096;

/// 24-byte tuple: key(8) | value(8) | filler(8).
fn tuple(key: u64, value: u64) -> Vec<u8> {
    let mut t = Vec::with_capacity(24);
    t.extend_from_slice(&key.to_be_bytes());
    t.extend_from_slice(&value.to_le_bytes());
    t.extend_from_slice(&[0u8; 8]);
    t
}

struct Run {
    elapsed: Duration,
    rows: u64,
    stats: PoolStats,
    heap: Arc<LatencyDisk>,
    index: Arc<LatencyDisk>,
}

/// Builds the table over free writes, sweeps the index pool cold, and
/// times one full ordered scan against the 250 µs-per-round-trip reads.
fn cold_scan(readahead: usize) -> Run {
    let model = DiskModel { read_ns: READ_NS, write_ns: 0 };
    let heap = Arc::new(LatencyDisk::new(PAGE_SIZE, model));
    let index = Arc::new(LatencyDisk::new(PAGE_SIZE, model));
    let config = DbConfig { page_size: PAGE_SIZE, readahead, ..DbConfig::default() };
    let db = Database::with_disks(
        config,
        Arc::clone(&heap) as Arc<dyn DiskManager>,
        Arc::clone(&index) as Arc<dyn DiskManager>,
    )
    .unwrap();
    let t = db.create_table("t", 24).unwrap();
    t.create_index(IndexSpec::cached("pk", FieldSpec::new(0, 8), vec![FieldSpec::new(8, 8)]))
        .unwrap();
    for k in 0..ROWS {
        t.insert(&tuple(k, k.wrapping_mul(3))).unwrap();
    }

    // Warm pass: populate every cache line (projection writes cached
    // fields into leaf free space on first touch) while the pool is
    // hot, so the timed pass below is read-only and pure cache-hit.
    let pk = t.index("pk").unwrap();
    assert_eq!(pk.range_projected_all().filter(|r| r.is_ok()).count() as u64, ROWS);

    // Sweep the index pool cold (best-effort: unpinned frames only), so
    // the scan pays for every leaf. The heap pool stays warm — this
    // bench isolates the leaf read path the cursor readahead targets.
    let index_pool = db.index_pool();
    index_pool.flush_all().unwrap();
    for id in 0..index_pool.disk().num_pages() {
        let _ = index_pool.evict_page(PageId(id));
    }
    index_pool.reset_stats();

    let start = Instant::now();
    // Projected scan over pre-warmed cache lines: every row is served
    // from leaf free space, so the measured path is exactly the leaf
    // read path readahead targets (no per-row heap chase diluting the
    // device time, and no cache-populate writes perturbing the disks).
    let rows = pk.range_projected_all().filter(|r| r.is_ok()).count() as u64;
    let elapsed = start.elapsed();
    let stats = index_pool.stats();

    drop(pk);
    drop(t);
    db.close().unwrap();
    Run { elapsed, rows, stats, heap, index }
}

fn assert_disks_identical(name: &str, a: &LatencyDisk, b: &LatencyDisk) {
    assert_eq!(a.num_pages(), b.num_pages(), "{name} disk page counts diverged under readahead");
    for id in 0..a.num_pages() {
        let mut pa = Page::new(PAGE_SIZE);
        let mut pb = Page::new(PAGE_SIZE);
        a.read(PageId(id), &mut pa).unwrap();
        b.read(PageId(id), &mut pb).unwrap();
        assert_eq!(pa.bytes(), pb.bytes(), "{name} page {id} diverged under readahead");
    }
}

fn main() {
    let off = cold_scan(0);
    let on = cold_scan(READAHEAD);
    assert_eq!(off.rows, ROWS, "scan must visit every row");
    assert_eq!(on.rows, ROWS, "scan must visit every row");

    let off_rps = off.rows as f64 / off.elapsed.as_secs_f64();
    let on_rps = on.rows as f64 / on.elapsed.as_secs_f64();
    let speedup = on_rps / off_rps;
    println!("range_scans: cold scan of {ROWS} rows @ {}us/round-trip", READ_NS / 1000);
    println!(
        "  readahead=0  : {:>8.1} rows/s ({:.1} ms; {} pages in {} batches)",
        off_rps,
        off.elapsed.as_secs_f64() * 1e3,
        off.stats.read_pages,
        off.stats.read_batches,
    );
    println!(
        "  readahead={READAHEAD} : {:>8.1} rows/s ({:.1} ms; {} pages in {} batches, \
         {} prefetched / {} hit / {} wasted)",
        on_rps,
        on.elapsed.as_secs_f64() * 1e3,
        on.stats.read_pages,
        on.stats.read_batches,
        on.stats.prefetch_issued,
        on.stats.prefetch_hits,
        on.stats.prefetch_wasted,
    );
    println!("  speedup      : {speedup:.1}x");

    assert!(on.stats.prefetch_issued > 0, "the readahead run must actually prefetch");
    assert!(
        on.stats.read_batches < on.stats.read_pages,
        "readahead batches must coalesce multiple pages per round-trip"
    );
    assert!(
        speedup >= 3.0,
        "cursor readahead must deliver >= 3x cold sequential scan throughput, got {speedup:.2}x \
         ({off_rps:.0} -> {on_rps:.0} rows/s)"
    );

    // Speculation is read-only: the two runs executed the identical
    // write workload, so their durable state must match to the byte.
    assert_disks_identical("heap", &off.heap, &on.heap);
    assert_disks_identical("index", &off.index, &on.index);
    println!("  durable state: byte-identical with readahead on and off");
}
