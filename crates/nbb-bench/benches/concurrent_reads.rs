//! Multi-threaded read throughput through the cached-index projection
//! path (§2.1's hot query), comparing buffer-pool shard counts.
//!
//! Each measured iteration spawns `threads` workers that together
//! perform `threads × OPS_PER_THREAD` `project_via_index` calls. With
//! `shards = 1` every page touch funnels through a single pool mutex;
//! with `shards = 8` readers only contend when their pages collide on a
//! stripe. The recorded elements/s is end-to-end read throughput.
//!
//! Two regimes:
//!
//! * `resident/…` — working set fits in the pools; measures pure
//!   lock-path CPU cost. On a single-core host this is flat across
//!   thread counts (threads timeshare one CPU and hold times are tiny),
//!   so treat it as a contention sanity check, not a scaling curve.
//! * `io_bound/…` — working set ≫ pool frames over a [`LatencyDisk`]
//!   (a disk that really blocks). Faults dominate here. Historically a
//!   miss held its stripe's lock across the device wait, so in-flight
//!   faults were capped at one per *shard*; with the pool's
//!   I/O-in-progress frame state machine the stripe lock is released
//!   across the read and the cap is one per *frame* — sharding still
//!   helps (map-lock contention), but no longer decides overlap.
//! * `overlap/…` — the direct probe of that state machine: k threads
//!   fault k distinct cold pages in a **single-stripe** pool. The
//!   printed overlap factor (serialized-time / wall-time) must clear
//!   [`MIN_OVERLAP`]; before the state machine it pinned at ~1.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nbb_core::db::{Database, DbConfig};
use nbb_core::table::{FieldSpec, IndexSpec, Table};
use nbb_storage::{DiskManager, DiskModel, LatencyDisk};
use std::sync::Arc;

const RESIDENT_ROWS: u64 = 20_000;
const RESIDENT_OPS_PER_THREAD: usize = 2_000;

const IO_ROWS: u64 = 50_000;
const IO_OPS_PER_THREAD: usize = 50;
/// Modeled device latency for the io_bound regime (NVMe-ish).
const IO_READ_NS: u64 = 50_000;

/// Overlap probe: threads (= cold pages faulted at once, single stripe).
const OVERLAP_K: usize = 8;
/// Overlap probe: modeled device latency (long enough that thread spawn
/// and scheduling noise is a rounding error against k × 20ms).
const OVERLAP_READ_NS: u64 = 20_000_000;
/// Floor on overlapped faults per stripe: k cold faults must finish at
/// least this many times faster than k serialized device waits.
const MIN_OVERLAP: f64 = 3.0;

/// 24-byte tuple: key(8) | value(8) | filler(8).
fn tuple(key: u64, value: u64) -> Vec<u8> {
    let mut t = Vec::with_capacity(24);
    t.extend_from_slice(&key.to_be_bytes());
    t.extend_from_slice(&value.to_le_bytes());
    t.extend_from_slice(&[0u8; 8]);
    t
}

fn mix(k: u64) -> u64 {
    k.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407)
}

fn fill_table(db: &Database, rows: u64, warm: bool) -> Arc<Table> {
    let t = db.create_table("t", 24).unwrap();
    for k in 0..rows {
        t.insert(&tuple(k, k.wrapping_mul(3))).unwrap();
    }
    t.create_index(IndexSpec::cached("pk", FieldSpec::new(0, 8), vec![FieldSpec::new(8, 8)]))
        .unwrap();
    if warm {
        for k in 0..rows {
            t.project_via_index("pk", &k.to_be_bytes()).unwrap().unwrap();
        }
    }
    t
}

/// Runs `threads × ops` projections; returns a checksum so the work
/// cannot be optimized away.
fn read_batch(table: &Arc<Table>, threads: usize, ops: usize, rows: u64) -> u64 {
    // Advance the key stream across iterations, or every sample after
    // the first replays the previous sample's (now resident) keys and
    // the io_bound regime silently degrades to the resident one.
    static EPOCH: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let epoch = EPOCH.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|ti| {
                let table = Arc::clone(table);
                s.spawn(move || {
                    let mut acc = 0u64;
                    // Per-thread seed so threads fan out over the key
                    // space instead of marching in lockstep.
                    let mut k = mix(mix(epoch) ^ (0x5eed + ti as u64));
                    for _ in 0..ops {
                        k = mix(k);
                        let key = (k % rows).to_be_bytes();
                        let p = table.project_via_index("pk", &key).unwrap().unwrap();
                        acc = acc
                            .wrapping_add(u64::from_le_bytes(p.payload[..8].try_into().unwrap()));
                    }
                    acc
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).fold(0u64, u64::wrapping_add)
    })
}

/// Fully resident pools: measures the lock path itself.
fn bench_resident(c: &mut Criterion) {
    for &shards in &[1usize, 8] {
        let db = Database::open(DbConfig {
            page_size: 8192,
            heap_frames: 1024,
            index_frames: 1024,
            pool_shards: shards,
            disk_model: None,
            ..DbConfig::default()
        });
        let table = fill_table(&db, RESIDENT_ROWS, true);
        assert_eq!(table.index_pool().shards(), shards, "knob must take effect");
        let mut group = c.benchmark_group(format!("concurrent_reads/resident/shards={shards}"));
        group.sample_size(10);
        for &threads in &[1usize, 2, 4, 8] {
            group.throughput(Throughput::Elements((threads * RESIDENT_OPS_PER_THREAD) as u64));
            group.bench_function(BenchmarkId::from_parameter(threads), |b| {
                b.iter(|| {
                    black_box(read_batch(&table, threads, RESIDENT_OPS_PER_THREAD, RESIDENT_ROWS))
                })
            });
        }
        group.finish();
    }
}

/// Working set ≫ frames over a blocking disk: measures how many device
/// waits the pool can keep in flight.
fn bench_io_bound(c: &mut Criterion) {
    for &shards in &[1usize, 8] {
        let model = DiskModel { read_ns: IO_READ_NS, write_ns: 0 };
        let heap_disk: Arc<dyn DiskManager> = Arc::new(LatencyDisk::new(4096, model));
        let index_disk: Arc<dyn DiskManager> = Arc::new(LatencyDisk::new(4096, model));
        let db = Database::with_disks(
            DbConfig {
                page_size: 4096,
                heap_frames: 128,
                index_frames: 128,
                pool_shards: shards,
                disk_model: None,
                ..DbConfig::default()
            },
            heap_disk,
            index_disk,
        )
        .unwrap();
        let table = fill_table(&db, IO_ROWS, false);
        assert_eq!(table.index_pool().shards(), shards, "knob must take effect");
        let mut group = c.benchmark_group(format!("concurrent_reads/io_bound/shards={shards}"));
        group.sample_size(10);
        for &threads in &[1usize, 2, 4, 8] {
            group.throughput(Throughput::Elements((threads * IO_OPS_PER_THREAD) as u64));
            group.bench_function(BenchmarkId::from_parameter(threads), |b| {
                b.iter(|| black_box(read_batch(&table, threads, IO_OPS_PER_THREAD, IO_ROWS)))
            });
        }
        group.finish();
    }
}

/// Overlapped faults per stripe at shards = 1: k threads fault k
/// distinct cold pages of a single-stripe pool over a blocking disk and
/// the wall clock tells how many device waits ran concurrently. This
/// isolates the fault state machine from sharding entirely — the win
/// must appear with one stripe or it isn't the state machine's.
fn bench_overlapped_faults(_c: &mut Criterion) {
    use nbb_storage::{BufferPool, Page, PageId};
    use std::sync::Barrier;
    use std::time::{Duration, Instant};

    let model = DiskModel { read_ns: OVERLAP_READ_NS, write_ns: 0 };
    let disk = Arc::new(LatencyDisk::new(4096, model));
    let pool = Arc::new(BufferPool::with_options(
        Arc::clone(&disk) as Arc<dyn DiskManager>,
        2 * OVERLAP_K,
        1,
        0,
        0,
    ));
    assert_eq!(pool.shards(), 1, "the probe must run in a single stripe");

    // Best-of-three rounds over fresh cold pages, so one scheduler
    // hiccup cannot decide the headline number.
    let mut best = Duration::MAX;
    for _ in 0..3 {
        let ids: Vec<PageId> = (0..OVERLAP_K).map(|_| pool.new_page().unwrap()).collect();
        for id in &ids {
            disk.write(*id, &Page::new(4096)).unwrap();
        }
        let barrier = Barrier::new(OVERLAP_K);
        let start = Instant::now();
        std::thread::scope(|s| {
            for id in &ids {
                let pool = Arc::clone(&pool);
                let barrier = &barrier;
                let id = *id;
                s.spawn(move || {
                    barrier.wait();
                    pool.with_page(id, |p| black_box(p.bytes()[0])).unwrap();
                });
            }
        });
        best = best.min(start.elapsed());
        // Evict so the next round faults cold again.
        for id in &ids {
            pool.evict_page(*id).unwrap();
        }
    }
    let serialized = Duration::from_nanos(OVERLAP_READ_NS * OVERLAP_K as u64);
    let overlap = serialized.as_secs_f64() / best.as_secs_f64();
    let s = pool.stats();
    println!(
        "concurrent_reads overlap: shards=1, k={OVERLAP_K} distinct cold faults in \
         {:.1}ms vs {:.0}ms serialized = {overlap:.1} overlapped faults per stripe \
         ({} faults, {} co-waiter joins)",
        best.as_secs_f64() * 1e3,
        serialized.as_secs_f64() * 1e3,
        s.faults,
        s.fault_joins,
    );
    assert!(
        overlap >= MIN_OVERLAP,
        "a single stripe must sustain >= {MIN_OVERLAP} overlapped faults at k={OVERLAP_K}, \
         got {overlap:.1}"
    );
}

fn short() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench_resident, bench_io_bound, bench_overlapped_faults
}
criterion_main!(benches);
