//! Microbenchmarks for the index cache: probe, store, promote, and the
//! end-to-end cached lookup path.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use nbb_btree::cache::{CacheConfig, CacheView, CacheViewMut};
use nbb_btree::node::NodeMut;
use nbb_btree::{BTree, BTreeOptions};
use nbb_storage::{BufferPool, DiskManager, InMemoryDisk, Page};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

fn cfg() -> CacheConfig {
    CacheConfig { payload_size: 17, bucket_slots: 8, log_threshold: 64 }
}

/// A 68%-full leaf with a fully-populated cache; returns cached ids.
fn populated_leaf() -> (Page, Vec<u64>) {
    let mut rng = SmallRng::seed_from_u64(1);
    let mut page = Page::new(8192);
    {
        let mut node = NodeMut::init_leaf(&mut page, 32);
        let cap = node.as_ref().capacity();
        for i in 0..(cap as f64 * 0.68) as u64 {
            let mut key = vec![0u8; 32];
            key[..8].copy_from_slice(&i.to_be_bytes());
            node.append_sorted(&key, i + 1);
        }
    }
    let capacity = CacheView::new(&page, 32, &cfg()).capacity();
    let mut ids = Vec::new();
    {
        let mut cv = CacheViewMut::new(&mut page, 32, &cfg());
        for i in 0..capacity as u64 {
            let id = 10_000 + i;
            cv.store(id, &[7u8; 17], &mut rng);
            ids.push(id);
        }
    }
    (page, ids)
}

fn bench_probe(c: &mut Criterion) {
    let (page, ids) = populated_leaf();
    let view_cfg = cfg();
    let mut rng = SmallRng::seed_from_u64(2);
    c.bench_function("cache_probe_hit", |b| {
        b.iter(|| {
            let id = ids[rng.gen_range(0..ids.len())];
            let v = CacheView::new(&page, 32, &view_cfg);
            black_box(v.probe(black_box(id)))
        })
    });
    c.bench_function("cache_probe_miss_full_scan", |b| {
        b.iter(|| {
            let v = CacheView::new(&page, 32, &view_cfg);
            black_box(v.probe(black_box(u64::MAX - 1)))
        })
    });
}

fn bench_store_promote(c: &mut Criterion) {
    let view_cfg = cfg();
    c.bench_function("cache_store_evicting", |b| {
        let (mut page, _) = populated_leaf();
        let mut rng = SmallRng::seed_from_u64(3);
        let mut id = 1_000_000u64;
        b.iter(|| {
            id += 1;
            let mut cv = CacheViewMut::new(&mut page, 32, &view_cfg);
            black_box(cv.store(id, &[9u8; 17], &mut rng))
        })
    });
    c.bench_function("cache_promote", |b| {
        let (mut page, ids) = populated_leaf();
        let mut rng = SmallRng::seed_from_u64(4);
        let id = ids[0];
        let mut slot = CacheView::new(&page, 32, &cfg()).probe(id).unwrap().0;
        b.iter(|| {
            let mut cv = CacheViewMut::new(&mut page, 32, &view_cfg);
            if let Some(s) = cv.promote(slot, id, &mut rng) {
                slot = s;
            }
            black_box(slot)
        })
    });
}

fn bench_tree_lookup_paths(c: &mut Criterion) {
    let disk: Arc<dyn DiskManager> = Arc::new(InMemoryDisk::new(8192));
    let pool = Arc::new(BufferPool::new(disk, 1024));
    let opts = BTreeOptions { cache: Some(cfg()), cache_seed: 5, ..Default::default() };
    let tree = BTree::create(pool, 8, opts).unwrap();
    let n = 50_000u64;
    for i in 0..n {
        tree.insert(&i.to_be_bytes(), i).unwrap();
    }
    // Warm every key's cache entry.
    for i in 0..n {
        let m = tree.lookup_cached(&i.to_be_bytes()).unwrap();
        if m.payload.is_none() {
            tree.cache_populate(m.leaf, i, &[1u8; 17], m.token).unwrap();
        }
    }
    let mut rng = SmallRng::seed_from_u64(6);
    let mut group = c.benchmark_group("tree_lookup");
    group.bench_function(BenchmarkId::new("cached_hit", n), |b| {
        b.iter(|| {
            let k = (rng.gen::<u64>() % n).to_be_bytes();
            black_box(tree.lookup_cached(black_box(&k)).unwrap())
        })
    });
    group.bench_function(BenchmarkId::new("plain_get", n), |b| {
        b.iter(|| {
            let k = (rng.gen::<u64>() % n).to_be_bytes();
            black_box(tree.get(black_box(&k)).unwrap())
        })
    });
    group.finish();
}

fn short() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench_probe, bench_store_promote, bench_tree_lookup_paths
}
criterion_main!(benches);
