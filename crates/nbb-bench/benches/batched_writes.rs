//! Batched vs point writes, and concurrent disjoint-range writers vs
//! the old serialized-writer discipline.
//!
//! Two questions, mirroring `batched_reads.rs` on the write side:
//!
//! 1. **Amortization.** A 1024-key sorted `insert_many` pays one
//!    descent + one per-leaf latch + one page access per *destination
//!    leaf*; the equivalent loop of single `insert` calls pays all
//!    three per *key*. The headline ratio (batched time / looped time)
//!    is printed and asserted ≤ 0.6 — the acceptance bar for the
//!    batched write path.
//! 2. **Parallelism.** With per-leaf latching, 8 writer threads on
//!    disjoint key ranges only contend on pool stripes and split
//!    escalations. The baseline emulates the seed's discipline — one
//!    tree-level write lock serializing every mutation — via a global
//!    mutex around each batch. Over a blocking [`LatencyDisk`] with
//!    small pools (the io-bound regime where concurrency pays even on
//!    one core), the free-running writers must beat the serialized
//!    ones at `shards = 8`.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nbb_core::db::{Database, DbConfig};
use nbb_core::table::{FieldSpec, IndexSpec, Table};
use nbb_storage::{DiskManager, DiskModel, LatencyDisk};
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::{Duration, Instant};

const BASE_ROWS: u64 = 50_000;
const BATCH: u64 = 1024;
/// Acceptance bar: one sorted 1024-key multi-insert costs at most this
/// fraction of the equivalent looped single inserts.
const MAX_BATCHED_RATIO: f64 = 0.6;

const WRITER_THREADS: u64 = 8;
const WRITER_BATCH: u64 = 128;
const WRITER_ROUNDS: u64 = 6;
/// Modeled device latency for the concurrent regime (NVMe-ish).
const IO_NS: u64 = 20_000;

/// 24-byte tuple: key(8) | value(8) | filler(8).
fn tuple(key: u64, value: u64) -> Vec<u8> {
    let mut t = Vec::with_capacity(24);
    t.extend_from_slice(&key.to_be_bytes());
    t.extend_from_slice(&value.to_le_bytes());
    t.extend_from_slice(&[0u8; 8]);
    t
}

fn build_table(db: &Database) -> Arc<Table> {
    let t = db.create_table("t", 24).unwrap();
    for chunk in (0..BASE_ROWS).step_by(4096) {
        let tuples: Vec<Vec<u8>> =
            (chunk..(chunk + 4096).min(BASE_ROWS)).map(|k| tuple(k, k * 3)).collect();
        t.insert_many(&tuples).unwrap();
    }
    t.create_index(IndexSpec::cached("pk", FieldSpec::new(0, 8), vec![FieldSpec::new(8, 8)]))
        .unwrap();
    t
}

/// Criterion rungs: insert a 1024-key sorted batch above the table's
/// key space, then delete it again, so the table size stays bounded
/// across criterion's adaptive iteration count. Both rungs do the same
/// insert+delete round trip; only the batching differs.
fn bench_write_round_trip(c: &mut Criterion) {
    let db = Database::open(DbConfig::default());
    let t = build_table(&db);
    let pk = t.index("pk").unwrap();
    let keys: Vec<[u8; 8]> = (BASE_ROWS..BASE_ROWS + BATCH).map(|k| k.to_be_bytes()).collect();
    let tuples: Vec<Vec<u8>> = (BASE_ROWS..BASE_ROWS + BATCH).map(|k| tuple(k, k)).collect();

    let mut group = c.benchmark_group("batched_writes");
    group.throughput(Throughput::Elements(BATCH));

    group.bench_function(BenchmarkId::new("looped_insert_delete", BATCH), |b| {
        b.iter(|| {
            for tu in &tuples {
                black_box(t.insert(tu).unwrap());
            }
            for key in &keys {
                black_box(pk.delete(key).unwrap());
            }
        })
    });

    group.bench_function(BenchmarkId::new("insert_many_delete_many", BATCH), |b| {
        b.iter(|| {
            black_box(t.insert_many(&tuples).unwrap());
            black_box(pk.delete_many(&keys).unwrap());
        })
    });
    group.finish();

    // Headline: pure sorted multi-insert vs looped single inserts over
    // identical fresh key ranges, measured back to back — on a fresh
    // table, so the rung phase's churned leaves and recycled heap
    // slots cannot skew either side.
    let db = Database::open(DbConfig::default());
    let t = build_table(&db);
    const REPS: u64 = 15;
    let mut looped = Duration::ZERO;
    let mut batched = Duration::ZERO;
    let mut next_key = BASE_ROWS;
    for _ in 0..REPS {
        let range: Vec<Vec<u8>> = (next_key..next_key + BATCH).map(|k| tuple(k, k)).collect();
        next_key += BATCH;
        let start = Instant::now();
        for tu in &range {
            black_box(t.insert(tu).unwrap());
        }
        looped += start.elapsed();

        let range: Vec<Vec<u8>> = (next_key..next_key + BATCH).map(|k| tuple(k, k)).collect();
        next_key += BATCH;
        let start = Instant::now();
        black_box(t.insert_many(&range).unwrap());
        batched += start.elapsed();
    }
    let ratio = batched.as_secs_f64() / looped.as_secs_f64();
    let w = t.index("pk").unwrap().tree().write_stats();
    println!(
        "batched_writes ratio: one {BATCH}-key sorted insert_many costs {ratio:.2}x \
         the looped single inserts ({:.1}us vs {:.1}us per batch; \
         tree amortization {:.1} keys/descent overall)",
        batched.as_secs_f64() * 1e6 / REPS as f64,
        looped.as_secs_f64() * 1e6 / REPS as f64,
        w.keys_per_leaf_group(),
    );
    assert!(
        ratio <= MAX_BATCHED_RATIO,
        "sorted multi-insert must cost <= {MAX_BATCHED_RATIO}x the looped inserts, got {ratio:.2}x"
    );
}

/// One full multi-writer workload: every thread owns a disjoint key
/// range and rounds through batched inserts + deletes. `serialize`
/// wraps each batch in one global mutex — the seed's single
/// tree-level-write-lock discipline — so the same work degrades to one
/// writer at a time.
fn run_writers(table: &Arc<Table>, serialize: Option<&Mutex<()>>) -> Duration {
    let start = Instant::now();
    std::thread::scope(|s| {
        for w in 0..WRITER_THREADS {
            let table = Arc::clone(table);
            s.spawn(move || {
                let pk = table.index("pk").unwrap();
                let base = BASE_ROWS + w * WRITER_ROUNDS * WRITER_BATCH;
                for round in 0..WRITER_ROUNDS {
                    let lo = base + round * WRITER_BATCH;
                    let tuples: Vec<Vec<u8>> =
                        (lo..lo + WRITER_BATCH).map(|k| tuple(k, k)).collect();
                    let keys: Vec<[u8; 8]> =
                        (lo..lo + WRITER_BATCH).map(|k| k.to_be_bytes()).collect();
                    {
                        let _serialized = serialize.map(|m| m.lock());
                        table.insert_many(&tuples).unwrap();
                    }
                    {
                        let _serialized = serialize.map(|m| m.lock());
                        pk.delete_many(&keys).unwrap();
                    }
                }
            });
        }
    });
    start.elapsed()
}

/// Concurrent disjoint-range writers over a blocking disk, at 1 and 8
/// pool shards, against the serialized-writer baseline.
fn bench_concurrent_writers(c: &mut Criterion) {
    let mut at_8_shards: Option<(Duration, Duration)> = None;
    for &shards in &[1usize, 8] {
        let model = DiskModel { read_ns: IO_NS, write_ns: IO_NS };
        let heap_disk: Arc<dyn DiskManager> = Arc::new(LatencyDisk::new(4096, model));
        let index_disk: Arc<dyn DiskManager> = Arc::new(LatencyDisk::new(4096, model));
        let db = Database::with_disks(
            DbConfig {
                page_size: 4096,
                heap_frames: 256,
                index_frames: 256,
                pool_shards: shards,
                disk_model: None,
                ..DbConfig::default()
            },
            heap_disk,
            index_disk,
        )
        .unwrap();
        let table = build_table(&db);
        assert_eq!(table.index_pool().shards(), shards, "knob must take effect");

        let mut group = c.benchmark_group(format!("concurrent_writes/shards={shards}"));
        group.sample_size(10);
        group.throughput(Throughput::Elements(WRITER_THREADS * WRITER_ROUNDS * WRITER_BATCH * 2));
        let lock = Mutex::new(());
        group.bench_function(BenchmarkId::from_parameter("serialized"), |b| {
            b.iter(|| black_box(run_writers(&table, Some(&lock))))
        });
        group.bench_function(BenchmarkId::from_parameter("per_leaf_latched"), |b| {
            b.iter(|| black_box(run_writers(&table, None)))
        });
        group.finish();

        // Headline measurement outside criterion's adaptive loop;
        // best-of-two keeps a stray scheduler hiccup from deciding it.
        let serialized = run_writers(&table, Some(&lock)).min(run_writers(&table, Some(&lock)));
        let concurrent = run_writers(&table, None).min(run_writers(&table, None));
        println!(
            "concurrent_writes shards={shards}: {WRITER_THREADS} disjoint-range writers \
             {:.2}x vs serialized baseline ({:.1}ms vs {:.1}ms)",
            serialized.as_secs_f64() / concurrent.as_secs_f64(),
            concurrent.as_secs_f64() * 1e3,
            serialized.as_secs_f64() * 1e3,
        );
        if shards == 8 {
            at_8_shards = Some((concurrent, serialized));
        }
    }
    let (concurrent, serialized) = at_8_shards.expect("shards=8 measured");
    assert!(
        concurrent < serialized,
        "per-leaf latched writers must beat the single-write-lock baseline at 8 shards \
         ({concurrent:?} vs {serialized:?})"
    );
}

fn short() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300))
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench_write_round_trip, bench_concurrent_writers
}
criterion_main!(benches);
