//! Write-behind eviction: what a dirty victim's reclaim costs with the
//! write taken off the eviction path, vs the old synchronous scheme.
//!
//! The workload dirties a working set that overflows a small
//! single-stripe pool over a blocking [`LatencyDisk`], so every fault
//! must reclaim a dirty victim. In synchronous mode (`write_behind =
//! 0`) each reclaim pays the full modeled device write before the new
//! page can load; with write-behind it pays a page memcpy and the
//! background flusher absorbs the device waits. The headline ratio
//! (write-behind reclaim time / synchronous reclaim time) is printed
//! and asserted ≤ [`MAX_RECLAIM_RATIO`] — the acceptance bar for taking
//! write-back off the eviction path. `flush_all` (the durability
//! barrier) is measured separately so the cost doesn't vanish from the
//! books: write-behind defers the writes, it does not delete them.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use nbb_storage::{BufferPool, DiskManager, DiskModel, LatencyDisk, PageId};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Pages dirtied per pass (4-frame pool: all but 4 reclaim a dirty victim).
const PAGES: u64 = 32;
/// Modeled device write latency (NVMe-ish; reads are free so reclaim
/// cost is isolated).
const WRITE_NS: u64 = 2_000_000;
/// Acceptance bar: write-behind reclaim costs at most this fraction of
/// synchronous reclaim.
const MAX_RECLAIM_RATIO: f64 = 1.0 / 3.0;

struct Rig {
    pool: BufferPool,
    ids: Vec<PageId>,
}

fn rig(write_behind: usize) -> Rig {
    let model = DiskModel { read_ns: 0, write_ns: WRITE_NS };
    let disk: Arc<dyn DiskManager> = Arc::new(LatencyDisk::new(4096, model));
    let pool = BufferPool::with_options(disk, 4, 1, write_behind, 0);
    let ids = (0..PAGES).map(|_| pool.new_page().unwrap()).collect();
    Rig { pool, ids }
}

/// One pass: dirty every page in the working set, forcing
/// `PAGES - frames` dirty-victim reclaims. Returns the timed reclaim
/// phase; the flush barrier runs untimed (benched separately).
fn dirty_pass(rig: &Rig) -> Duration {
    let start = Instant::now();
    for (i, id) in rig.ids.iter().enumerate() {
        rig.pool.with_page_mut(*id, |p| p.bytes_mut()[0] = i as u8).unwrap();
    }
    let reclaim = start.elapsed();
    rig.pool.flush_all().unwrap();
    reclaim
}

fn bench_dirty_eviction(c: &mut Criterion) {
    let mut group = c.benchmark_group("dirty_eviction_reclaim");
    group.sample_size(10);
    for (label, wb) in [("sync", 0usize), ("write_behind", 64)] {
        let r = rig(wb);
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| black_box(dirty_pass(&r)))
        });
    }
    group.finish();

    // Separate rung: what the durability barrier itself costs when the
    // queue is full of deferred writes.
    let mut group = c.benchmark_group("write_behind_flush_barrier");
    group.sample_size(10);
    let r = rig(64);
    group.bench_function(BenchmarkId::from_parameter("dirty_pass_plus_flush"), |b| {
        b.iter(|| {
            let start = Instant::now();
            for (i, id) in r.ids.iter().enumerate() {
                r.pool.with_page_mut(*id, |p| p.bytes_mut()[0] = i as u8).unwrap();
            }
            r.pool.flush_all().unwrap();
            black_box(start.elapsed())
        })
    });
    group.finish();

    // Headline outside criterion's adaptive loop; best-of-two per mode.
    let sync_rig = rig(0);
    let wb_rig = rig(64);
    let sync_time = dirty_pass(&sync_rig).min(dirty_pass(&sync_rig));
    let wb_time = dirty_pass(&wb_rig).min(dirty_pass(&wb_rig));
    let ratio = wb_time.as_secs_f64() / sync_time.as_secs_f64();
    let s = wb_rig.pool.stats();
    println!(
        "dirty_eviction_reclaim ratio: write-behind reclaim costs {ratio:.3}x the \
         synchronous write-back ({:.2}ms vs {:.2}ms for {PAGES} dirtied pages; \
         {} enqueued, {} flushed in background)",
        wb_time.as_secs_f64() * 1e3,
        sync_time.as_secs_f64() * 1e3,
        s.wb_enqueued,
        s.wb_flushed,
    );
    assert!(
        ratio <= MAX_RECLAIM_RATIO,
        "victim reclaim must not pay a synchronous write: \
         ratio {ratio:.3} > bar {MAX_RECLAIM_RATIO:.3}"
    );
}

fn short() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300))
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench_dirty_eviction
}
criterion_main!(benches);
