//! Same-key writer storms through the key-level write-intent table.
//!
//! The complement of `batched_writes.rs`'s disjoint-range rung: here
//! every writer hammers **one** key, the worst case the intent table
//! exists for. The acceptance bar is *correctness under full
//! contention*, not speedup — 8 writers cycling put/update/delete on a
//! single hot key over a blocking disk must complete with **zero
//! aborted ops** (every op returns `Ok`; racing deleters split into one
//! winner and clean `false`s) while the storm provably serialized
//! through the intent table (`intent_parks > 0`, asserted). Throughput
//! and park/handoff counts are printed so regressions in the handoff
//! chain show up as numbers, not just green tests.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nbb_core::db::{Database, DbConfig};
use nbb_core::table::{FieldSpec, IndexSpec, Table};
use nbb_storage::{DiskManager, DiskModel, LatencyDisk};
use std::sync::Arc;
use std::time::{Duration, Instant};

const WRITERS: u64 = 8;
const ROUNDS: u64 = 24;
const HOT_KEY: u64 = 7;
/// Modeled device latency (NVMe-ish), matching batched_writes.rs.
const IO_NS: u64 = 20_000;

/// 24-byte tuple: key(8) | writer(8) | value(8).
fn tuple(key: u64, writer: u64, value: u64) -> Vec<u8> {
    let mut t = Vec::with_capacity(24);
    t.extend_from_slice(&key.to_be_bytes());
    t.extend_from_slice(&writer.to_le_bytes());
    t.extend_from_slice(&value.to_le_bytes());
    t
}

fn build() -> (Database, Arc<Table>) {
    let model = DiskModel { read_ns: IO_NS, write_ns: IO_NS };
    let heap_disk: Arc<dyn DiskManager> = Arc::new(LatencyDisk::new(4096, model));
    let index_disk: Arc<dyn DiskManager> = Arc::new(LatencyDisk::new(4096, model));
    let db = Database::with_disks(
        DbConfig {
            page_size: 4096,
            heap_frames: 64,
            index_frames: 64,
            disk_model: None,
            ..DbConfig::default()
        },
        heap_disk,
        index_disk,
    )
    .unwrap();
    let table = db.create_table("t", 24).unwrap();
    // Enough disjoint rows that the tree is multi-leaf and the pools
    // actually churn under the storm.
    for chunk in (0..8192u64).step_by(1024) {
        let tuples: Vec<Vec<u8>> = (chunk..chunk + 1024).map(|k| tuple(1000 + k, 0, k)).collect();
        table.insert_many(&tuples).unwrap();
    }
    table.create_index(IndexSpec::plain("pk", FieldSpec::new(0, 8))).unwrap();
    (db, table)
}

/// One full storm: every writer cycles put → update → delete on the
/// single hot key. Returns the wall time; panics on any aborted op —
/// under the intent table a lost race is a clean `false`, never an
/// error.
fn run_storm(table: &Arc<Table>) -> Duration {
    let start = Instant::now();
    std::thread::scope(|s| {
        for w in 0..WRITERS {
            let table = Arc::clone(table);
            s.spawn(move || {
                let pk = table.index("pk").unwrap();
                for r in 0..ROUNDS {
                    match (w + r) % 3 {
                        0 => {
                            pk.put(&tuple(HOT_KEY, w, r)).unwrap();
                        }
                        1 => {
                            // `false` = serialized behind a deleter;
                            // an error would be an aborted op.
                            black_box(
                                pk.update(&HOT_KEY.to_be_bytes(), &tuple(HOT_KEY, w, r)).unwrap(),
                            );
                        }
                        _ => {
                            black_box(pk.delete(&HOT_KEY.to_be_bytes()).unwrap());
                        }
                    }
                }
            });
        }
    });
    start.elapsed()
}

fn bench_same_key_storm(c: &mut Criterion) {
    let (_db, table) = build();

    let mut group = c.benchmark_group("same_key_writes");
    group.sample_size(10);
    group.throughput(Throughput::Elements(WRITERS * ROUNDS));
    group.bench_function(BenchmarkId::new("storm_one_key", WRITERS), |b| {
        b.iter(|| black_box(run_storm(&table)))
    });
    group.finish();

    // Headline outside criterion's adaptive loop.
    let wall = run_storm(&table).min(run_storm(&table));
    let s = table.stats();
    let w = table.index_tree("pk").unwrap().tree().write_stats();
    println!(
        "same_key_writes: {WRITERS} writers x {ROUNDS} rounds on one key in {:.1}ms \
         ({:.1} Kops/s serialized); {} intent parks, {} handoffs",
        wall.as_secs_f64() * 1e3,
        (WRITERS * ROUNDS) as f64 / wall.as_secs_f64() / 1e3,
        w.intent_parks,
        w.intent_handoffs,
    );
    // The acceptance bar: the storm really did serialize through the
    // intent table (writers parked and were handed the key), and the
    // final state is whole — one live hot row or none, with the index
    // and heap agreeing.
    assert!(
        s.intent_parks > 0,
        "an 8-writer one-key storm over a blocking disk must park rivals: {s:?}"
    );
    assert_eq!(s.intent_parks, s.intent_handoffs, "every park must resolve via a handoff");
    let hot = table.get_via_index("pk", &HOT_KEY.to_be_bytes()).unwrap();
    let mut live_hot = 0u64;
    table
        .scan(|_, row| {
            if u64::from_be_bytes(row[..8].try_into().unwrap()) == HOT_KEY {
                live_hot += 1;
            }
            true
        })
        .unwrap();
    assert_eq!(live_hot, u64::from(hot.is_some()), "heap and index must agree after the storm");
}

fn short() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300))
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench_same_key_storm
}
criterion_main!(benches);
