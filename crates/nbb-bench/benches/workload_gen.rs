//! Workload-generation benchmarks: zipf sampling and trace synthesis.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nbb_workload::{page_lookup_trace, ScrambledZipf, WikiGenerator, Zipf};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn bench_zipf(c: &mut Criterion) {
    let mut group = c.benchmark_group("zipf_sample");
    for &n in &[1_000u64, 1_000_000] {
        let z = Zipf::new(n, 0.5);
        let mut rng = SmallRng::seed_from_u64(1);
        group.throughput(Throughput::Elements(1));
        group.bench_function(BenchmarkId::new("plain", n), |b| {
            b.iter(|| black_box(z.sample(&mut rng)))
        });
        let s = ScrambledZipf::new(n, 0.5, 7);
        group.bench_function(BenchmarkId::new("scrambled", n), |b| {
            b.iter(|| black_box(s.sample(&mut rng)))
        });
    }
    group.finish();
}

fn bench_wiki_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("wiki_generate");
    group.throughput(Throughput::Elements(1_000));
    group.bench_function("pages_1k", |b| {
        b.iter(|| {
            let mut g = WikiGenerator::new(3);
            black_box(g.pages(1_000))
        })
    });
    group.bench_function("revisions_1k_pages_x5", |b| {
        b.iter(|| {
            let mut g = WikiGenerator::new(3);
            let mut pages = g.pages(1_000);
            black_box(g.revisions(&mut pages, 5))
        })
    });
    group.finish();
}

fn bench_trace(c: &mut Criterion) {
    let mut g = WikiGenerator::new(4);
    let pages = g.pages(5_000);
    let mut group = c.benchmark_group("trace_generate");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("page_lookups_10k", |b| {
        b.iter(|| black_box(page_lookup_trace(&pages, 10_000, 0.5, 0.01, 9)))
    });
    group.finish();
}

fn short() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench_zipf, bench_wiki_generation, bench_trace
}
criterion_main!(benches);
