//! Ablation benchmarks for the design choices DESIGN.md calls out:
//! covering index vs index cache (time per lookup), and cache probe cost
//! as entry size varies (the slot-scan trade-off behind the 25-byte
//! items). Hit-rate ablations (bucket size, policy) live in the
//! `ablation_policies` binary since they measure rates, not time.
//!
//! This bench also carries the asserted self-tuning gate
//! ([`tuning_policy_gate`]): it fails the run outright if the online
//! controller does not beat the best static spare-byte split.

use criterion::{black_box, criterion_group, BenchmarkId, Criterion};
use nbb_btree::cache::{CacheConfig, CacheView, CacheViewMut};
use nbb_btree::node::NodeMut;
use nbb_btree::{BTree, BTreeOptions, CoveringIndex};
use nbb_storage::{BufferPool, DiskManager, InMemoryDisk, Page};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

fn pool() -> Arc<BufferPool> {
    let disk: Arc<dyn DiskManager> = Arc::new(InMemoryDisk::new(8192));
    Arc::new(BufferPool::new(disk, 4096))
}

/// Covering index vs cached index, identical workload, warm caches.
fn bench_covering_vs_cache(c: &mut Criterion) {
    let n = 50_000u64;
    // Covering: 8-byte key + 17 covered bytes per entry.
    let covering = CoveringIndex::bulk_load(
        pool(),
        8,
        17,
        (0..n).map(|i| (i.to_be_bytes().to_vec(), vec![3u8; 17], i)),
        0.68,
    )
    .unwrap();
    // Cached: plain entries, 17-byte payloads in leaf free space.
    let cached = BTree::bulk_load(
        pool(),
        8,
        BTreeOptions {
            cache: Some(CacheConfig { payload_size: 17, bucket_slots: 8, log_threshold: 64 }),
            cache_seed: 1,
            ..Default::default()
        },
        (0..n).map(|i| (i.to_be_bytes().to_vec(), i)),
        0.68,
    )
    .unwrap();
    for i in 0..n {
        let m = cached.lookup_cached(&i.to_be_bytes()).unwrap();
        if m.payload.is_none() {
            cached.cache_populate(m.leaf, i, &[3u8; 17], m.token).unwrap();
        }
    }

    let mut rng = SmallRng::seed_from_u64(5);
    let mut group = c.benchmark_group("covering_vs_cache");
    group.bench_function("covering_lookup", |b| {
        b.iter(|| {
            let k = (rng.gen::<u64>() % n).to_be_bytes();
            black_box(covering.get(black_box(&k)).unwrap())
        })
    });
    group.bench_function("cached_lookup_warm", |b| {
        b.iter(|| {
            let k = (rng.gen::<u64>() % n).to_be_bytes();
            black_box(cached.lookup_cached(black_box(&k)).unwrap())
        })
    });
    group.finish();

    // Space ablation, printed once: the paper's bloat argument.
    let cov_leaves = covering.tree().index_stats().unwrap().leaf_pages;
    let cache_leaves = cached.index_stats().unwrap().leaf_pages;
    println!(
        "[space] covering index: {cov_leaves} leaves; cached index: {cache_leaves} leaves \
         ({:.2}x bloat for covering)",
        cov_leaves as f64 / cache_leaves as f64
    );
}

/// Probe cost as cache entry size varies: bigger entries mean fewer
/// slots to scan but more bytes per entry.
fn bench_probe_by_entry_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("probe_by_payload");
    for &payload in &[9usize, 17, 57, 120] {
        let cfg = CacheConfig { payload_size: payload, bucket_slots: 8, log_threshold: 64 };
        let mut page = Page::new(8192);
        {
            let mut node = NodeMut::init_leaf(&mut page, 32);
            let cap = node.as_ref().capacity();
            for i in 0..(cap as f64 * 0.68) as u64 {
                let mut key = vec![0u8; 32];
                key[..8].copy_from_slice(&i.to_be_bytes());
                node.append_sorted(&key, i + 1);
            }
        }
        let capacity = CacheView::new(&page, 32, &cfg).capacity();
        let mut rng = SmallRng::seed_from_u64(9);
        {
            let mut cv = CacheViewMut::new(&mut page, 32, &cfg);
            let pl = vec![1u8; payload];
            for i in 0..capacity as u64 {
                cv.store(1000 + i, &pl, &mut rng);
            }
        }
        group.bench_function(BenchmarkId::from_parameter(payload), |b| {
            b.iter(|| {
                // Worst case: full scan (miss).
                let v = CacheView::new(&page, 32, &cfg);
                black_box(v.probe(black_box(u64::MAX - 1)))
            })
        });
    }
    group.finish();
}

fn short() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

/// The self-tuning acceptance gate: the controller, starting from an
/// even split, must beat every static spend policy on the shifting
/// workload (hot-set migration + projection-mix flip mid-run) and land
/// within 10% of each phase's winning static split. Hit counts are
/// deterministic (seeded workload, manual ticks), so this asserts —
/// it does not merely print.
fn tuning_policy_gate() {
    use nbb_bench::tuning::{assert_tuned_beats_static, run_all, TuningScale};
    let results = run_all(&TuningScale::full());
    for r in &results {
        println!(
            "[tuning] {:>12}: total {:>7} hits, per-phase {:?}",
            r.policy.name(),
            r.total_hits(),
            r.phases.iter().map(|p| p.hits).collect::<Vec<_>>()
        );
    }
    for d in results.iter().flat_map(|r| &r.decisions) {
        println!("[tuning]   {d}");
    }
    assert_tuned_beats_static(&results, 0.10);
    println!("[tuning] PASS: tuned beats every static split overall, within 10% per phase");
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench_covering_vs_cache, bench_probe_by_entry_size
}

fn main() {
    benches();
    tuning_policy_gate();
}
