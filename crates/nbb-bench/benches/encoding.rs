//! Encoding benchmarks: bit packing (fast vs reference), codecs,
//! timestamps, and the schema analyzer.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nbb_encoding::bitpack::{pack, pack_ref, unpack, unpack_ref};
use nbb_encoding::timestamp::{format_epoch, to_u32};
use nbb_encoding::{
    analyze_table, ColumnDef, DeclaredType, DeltaColumn, DictColumn, Schema, Value,
};

fn bench_bitpack(c: &mut Criterion) {
    let values: Vec<u64> = (0..100_000u64).map(|i| (i * 2_654_435_761) % 1024).collect();
    let mut group = c.benchmark_group("bitpack_10bit_100k");
    group.throughput(Throughput::Elements(values.len() as u64));
    group.bench_function("pack_fast", |b| b.iter(|| black_box(pack(&values, 10))));
    group.bench_function("pack_ref", |b| b.iter(|| black_box(pack_ref(&values, 10))));
    let packed = pack(&values, 10);
    group
        .bench_function("unpack_fast", |b| b.iter(|| black_box(unpack(&packed, 10, values.len()))));
    group.bench_function("unpack_ref", |b| {
        b.iter(|| black_box(unpack_ref(&packed, 10, values.len())))
    });
    group.finish();
}

fn bench_codecs(c: &mut Criterion) {
    let strs: Vec<String> = (0..50_000).map(|i| format!("status-{}", i % 8)).collect();
    c.bench_function("dict_encode_50k_card8", |b| b.iter(|| black_box(DictColumn::encode(&strs))));
    let ids: Vec<u64> = (5_000_000..5_050_000).collect();
    c.bench_function("delta_encode_50k_sequential", |b| {
        b.iter(|| black_box(DeltaColumn::encode(&ids)))
    });
}

fn bench_timestamps(c: &mut Criterion) {
    let ts: Vec<String> = (0..10_000u64).map(|i| format_epoch(i * 977)).collect();
    let mut group = c.benchmark_group("timestamp");
    group.throughput(Throughput::Elements(ts.len() as u64));
    group.bench_function("parse_10k", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for t in &ts {
                acc = acc.wrapping_add(u64::from(to_u32(t).unwrap()));
            }
            black_box(acc)
        })
    });
    group.finish();
}

fn bench_analyzer(c: &mut Criterion) {
    let schema = Schema {
        table: "bench".into(),
        columns: vec![
            ColumnDef::new("id", DeclaredType::Int64),
            ColumnDef::new("flag", DeclaredType::Bool),
            ColumnDef::new("ts", DeclaredType::Str { width: 14 }),
        ],
    };
    let rows: Vec<Vec<Value>> = (0..5_000u64)
        .map(|i| {
            vec![Value::Int(i as i64), Value::Bool(i % 2 == 0), Value::Str(format_epoch(i * 31))]
        })
        .collect();
    let mut group = c.benchmark_group("schema_analyze");
    group.throughput(Throughput::Elements(rows.len() as u64));
    group.bench_function(BenchmarkId::from_parameter(rows.len()), |b| {
        b.iter(|| black_box(analyze_table(&schema, &rows)))
    });
    group.finish();
}

fn short() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench_bitpack, bench_codecs, bench_timestamps, bench_analyzer
}
criterion_main!(benches);
