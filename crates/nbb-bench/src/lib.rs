//! # nbb-bench — experiment harness for *No Bits Left Behind*
//!
//! Shared simulation machinery behind the figure-regeneration binaries:
//!
//! * [`swap_sim`] — the abstract cache-policy simulator of Figure 2(a);
//! * [`cost_sim`] — the index/buffer-pool/disk cost harness of
//!   Figures 2(b) and 2(c), using real leaf pages and slotted pages;
//! * [`fig3`] — the end-to-end clustering/partitioning experiment of
//!   Figure 3 over the full storage stack;
//! * [`tuning`] — the shifting-workload rig comparing static
//!   spare-byte splits against the self-tuning controller;
//! * [`serverload`] — the end-to-end network front-door rig: pipelined
//!   client fleets against `nbb-server` over loopback TCP;
//! * [`report`] — aligned text tables for stdout.
//!
//! Binaries (`cargo run --release -p nbb-bench --bin <name>`):
//! `fig2a`, `fig2b`, `fig2c`, `fig3`, `capacity_analysis`,
//! `table_encoding`, `headline`. Criterion microbenchmarks live under
//! `benches/`.

#![warn(missing_docs)]

pub mod cost_sim;
pub mod fig3;
pub mod report;
pub mod serverload;
pub mod swap_sim;
pub mod tuning;
