//! Abstract simulation of the §2.1.1 cache-management policy — the
//! simulator behind Figure 2(a).
//!
//! The paper: "We ran a simulation to study how the hit rate varies with
//! the cache size using a zipfian distribution similar to Wikipedia
//! (α = .5) … Each point is the average hit rate after 100k lookups and
//! the x-axis is the percentage of the items that the cache can hold."
//!
//! The policy here is *identical* to the per-page implementation in
//! `nbb_btree::cache` (random free slot on insert; evict a random item
//! of the outermost bucket when full; on hit, swap with a random slot of
//! the adjacent bucket closer to the stable center), lifted to a single
//! slot array so cache size can sweep 1–100% of the item count directly.
//!
//! Two workload modes, as in the figure:
//! * **Swap** — read-only: the cache size is constant;
//! * **Shrink** — read/insert: key inserts overwrite the cache
//!   periphery, modeled by shrinking the usable slot range at a constant
//!   rate until half the cache is gone by the end of the run.

use nbb_workload::Zipf;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Workload mode for the Figure 2(a) simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fig2aMode {
    /// Read-only: constant cache size.
    Swap,
    /// Read/insert: half the slots are progressively overwritten.
    Shrink,
}

/// One slot array implementing the paper's bucketed swap policy.
pub struct SwapCacheSim {
    /// slot -> cached item id (u64::MAX = empty)
    slots: Vec<u64>,
    /// item id -> slot (usize::MAX = not cached)
    where_is: Vec<usize>,
    /// bucket half-width (N/2)
    half_bucket: usize,
    /// usable range [lo, hi) — Shrink narrows this
    lo: usize,
    hi: usize,
    /// management policy (ablation hook; default = the paper's).
    pub policy: Policy,
}

const EMPTY: u64 = u64::MAX;

impl SwapCacheSim {
    /// A cache of `slots` slots over `n_items` items, buckets of
    /// `bucket_slots`.
    pub fn new(slots: usize, n_items: usize, bucket_slots: usize) -> Self {
        assert!(slots >= 1);
        SwapCacheSim {
            slots: vec![EMPTY; slots],
            where_is: vec![usize::MAX; n_items],
            half_bucket: (bucket_slots / 2).max(1),
            lo: 0,
            hi: slots,
            policy: Policy::PaperSwap,
        }
    }

    fn center(&self) -> usize {
        // The stable point: fixed at the array center (the page-level S,
        // where key region and directory meet last).
        self.slots.len() / 2
    }

    fn bucket_of(&self, slot: usize) -> usize {
        self.center().abs_diff(slot) / self.half_bucket
    }

    /// Shrinks the usable range by one slot from the nearest edge —
    /// models one key insert overwriting the cache periphery.
    pub fn shrink_one(&mut self) {
        if self.hi - self.lo <= 1 {
            return;
        }
        // Alternate edges (keys and directory both grow).
        if (self.hi + self.lo).is_multiple_of(2) {
            self.kill_slot(self.lo);
            self.lo += 1;
        } else {
            self.hi -= 1;
            self.kill_slot(self.hi);
        }
    }

    fn kill_slot(&mut self, slot: usize) {
        let item = self.slots[slot];
        if item != EMPTY {
            self.where_is[item as usize] = usize::MAX;
            self.slots[slot] = EMPTY;
        }
    }

    /// Looks up `item`; on hit, promotes per the swap policy. On miss,
    /// inserts per the placement policy. Returns hit/miss.
    pub fn access<R: Rng>(&mut self, item: u64, rng: &mut R) -> bool {
        let slot = self.where_is[item as usize];
        if slot != usize::MAX && slot >= self.lo && slot < self.hi {
            if self.policy == Policy::PaperSwap {
                self.promote(slot, rng);
            }
            return true;
        }
        self.insert(item, rng);
        false
    }

    fn promote<R: Rng>(&mut self, slot: usize, rng: &mut R) {
        let b = self.bucket_of(slot);
        if b == 0 {
            return;
        }
        let h = self.half_bucket;
        let c = self.center();
        let (lo_d, hi_d) = ((b - 1) * h, b * h);
        let mut candidates: Vec<usize> = Vec::with_capacity(2 * h);
        for d in lo_d..hi_d {
            if let Some(s) = c.checked_sub(d) {
                if s >= self.lo && s < self.hi {
                    candidates.push(s);
                }
            }
            let s = c + d;
            if d != 0 && s >= self.lo && s < self.hi {
                candidates.push(s);
            }
        }
        candidates.retain(|&s| s != slot);
        if candidates.is_empty() {
            return;
        }
        let target = candidates[rng.gen_range(0..candidates.len())];
        let (a, b2) = (self.slots[slot], self.slots[target]);
        self.slots[slot] = b2;
        self.slots[target] = a;
        if a != EMPTY {
            self.where_is[a as usize] = target;
        }
        if b2 != EMPTY {
            self.where_is[b2 as usize] = slot;
        }
    }

    fn insert<R: Rng>(&mut self, item: u64, rng: &mut R) {
        if self.hi <= self.lo {
            return;
        }
        let range: Vec<usize> = (self.lo..self.hi).filter(|&s| self.slots[s] == EMPTY).collect();
        let slot = if !range.is_empty() {
            range[rng.gen_range(0..range.len())]
        } else if self.policy == Policy::RandomNoPromote {
            // Ablation: evict any occupied slot uniformly.
            let v = rng.gen_range(self.lo..self.hi);
            self.kill_slot(v);
            v
        } else {
            // Evict a random occupant of the outermost occupied bucket.
            let max_bucket = (self.lo..self.hi).map(|s| self.bucket_of(s)).max().expect("nonempty");
            let victims: Vec<usize> =
                (self.lo..self.hi).filter(|&s| self.bucket_of(s) == max_bucket).collect();
            let v = victims[rng.gen_range(0..victims.len())];
            self.kill_slot(v);
            v
        };
        self.slots[slot] = item;
        self.where_is[item as usize] = slot;
    }

    /// Occupied usable slots.
    pub fn occupied(&self) -> usize {
        (self.lo..self.hi).filter(|&s| self.slots[s] != EMPTY).count()
    }
}

/// Cache-management policy variant, for ablations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// The paper's policy: swap toward S on hit, evict peripheral.
    PaperSwap,
    /// Ablation: no promotion, evict a uniformly random occupied slot.
    RandomNoPromote,
}

/// One Figure 2(a) data point: mean hit rate over `lookups` zipfian
/// accesses with a cache holding `cache_pct` percent of `n_items`.
///
/// The cache is first warmed with `lookups` unmeasured accesses ("the
/// average hit rate after 100k lookups"), then measured over `lookups`
/// more. Shrink mode overwrites half the cache at a constant rate
/// during the measured phase.
pub fn fig2a_point(
    n_items: usize,
    cache_pct: f64,
    mode: Fig2aMode,
    lookups: usize,
    alpha: f64,
    seed: u64,
) -> f64 {
    fig2a_point_with(n_items, cache_pct, mode, lookups, alpha, seed, 8, Policy::PaperSwap)
}

/// [`fig2a_point`] with explicit bucket size and policy (ablations).
#[allow(clippy::too_many_arguments)]
pub fn fig2a_point_with(
    n_items: usize,
    cache_pct: f64,
    mode: Fig2aMode,
    lookups: usize,
    alpha: f64,
    seed: u64,
    bucket_slots: usize,
    policy: Policy,
) -> f64 {
    let slots = ((n_items as f64 * cache_pct / 100.0) as usize).max(1);
    let mut sim = SwapCacheSim::new(slots, n_items, bucket_slots);
    sim.policy = policy;
    let zipf = Zipf::new(n_items as u64, alpha);
    let mut rng = SmallRng::seed_from_u64(seed);
    for _ in 0..lookups {
        let item = zipf.sample(&mut rng) - 1;
        sim.access(item, &mut rng);
    }
    // Shrink mode: overwrite half the cache at a constant rate.
    let kills = slots / 2;
    let kill_every = lookups.checked_div(kills).map_or(usize::MAX, |k| k.max(1));
    let mut hits = 0usize;
    for i in 0..lookups {
        if mode == Fig2aMode::Shrink && kill_every != usize::MAX && i % kill_every == 0 && i > 0 {
            sim.shrink_one();
        }
        let item = zipf.sample(&mut rng) - 1;
        if sim.access(item, &mut rng) {
            hits += 1;
        }
    }
    hits as f64 / lookups as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warm_cache_of_full_size_hits_almost_always() {
        let h = fig2a_point(2_000, 100.0, Fig2aMode::Swap, 50_000, 0.5, 1);
        assert!(h > 0.9, "full-size cache hit rate {h}");
    }

    #[test]
    fn hit_rate_monotone_in_cache_size() {
        let h10 = fig2a_point(2_000, 10.0, Fig2aMode::Swap, 50_000, 0.5, 2);
        let h50 = fig2a_point(2_000, 50.0, Fig2aMode::Swap, 50_000, 0.5, 2);
        let h100 = fig2a_point(2_000, 100.0, Fig2aMode::Swap, 50_000, 0.5, 2);
        assert!(h10 < h50 && h50 < h100, "{h10} {h50} {h100}");
    }

    /// Mass of the top `c` ranks under zipf(alpha) over n — the hit-rate
    /// ceiling for ANY cache of c slots.
    fn top_mass(n: u64, c: u64, alpha: f64) -> f64 {
        let z = Zipf::new(n, alpha);
        (1..=c).map(|k| z.probability(k)).sum()
    }

    #[test]
    fn swap_approaches_the_information_bound_alpha_05() {
        // Note (EXPERIMENTS.md): under a literal zipf α=0.5, a 25% cache
        // cannot exceed the top-25% probability mass — √0.25 = 50% — so
        // the paper's ">90% at 25%" figure implies a different zipf
        // parameterization. What the policy *can* do is approach the
        // bound, which we verify here.
        let n = 10_000u64;
        let c = 2_500u64;
        let bound = top_mass(n, c, 0.5);
        assert!((0.48..0.52).contains(&bound), "sanity: bound {bound}");
        let h = fig2a_point(n as usize, 25.0, Fig2aMode::Swap, 200_000, 0.5, 3);
        assert!(h > 0.6 * bound, "hit {h} too far below bound {bound}");
    }

    #[test]
    fn paper_shape_emerges_at_alpha_1() {
        // With α = 1.0 the top-25% mass is ≈86% and the swap cache gets
        // close — matching the paper's Figure 2(a) absolute levels.
        let h = fig2a_point(10_000, 25.0, Fig2aMode::Swap, 200_000, 1.0, 3);
        assert!(h > 0.60, "alpha=1 at 25% cache should hit often, got {h}");
    }

    #[test]
    fn shrink_close_to_swap() {
        // "Shrink only reduces the hit rate by 5%".
        let swap = fig2a_point(5_000, 40.0, Fig2aMode::Swap, 100_000, 0.5, 4);
        let shrink = fig2a_point(5_000, 40.0, Fig2aMode::Shrink, 100_000, 0.5, 4);
        assert!(swap >= shrink, "shrink cannot beat swap: {swap} vs {shrink}");
        assert!(swap - shrink < 0.15, "shrink too far below swap: {swap} vs {shrink}");
    }

    #[test]
    fn promotion_protects_hot_items_from_shrink() {
        // After heavy shrinking, the hottest items should still hit.
        let mut sim = SwapCacheSim::new(1000, 1000, 8);
        let zipf = Zipf::new(1000, 0.5);
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..50_000 {
            let item = zipf.sample(&mut rng) - 1;
            sim.access(item, &mut rng);
        }
        for _ in 0..800 {
            sim.shrink_one();
        }
        // Hot rank-1 item: sample it many times, expect mostly hits.
        let hot_hits = (0..100).filter(|_| sim.access(0, &mut rng)).count();
        assert!(hot_hits > 90, "hot item evicted by shrink: {hot_hits}/100");
    }

    #[test]
    fn occupied_never_exceeds_capacity() {
        let mut sim = SwapCacheSim::new(64, 1000, 8);
        let mut rng = SmallRng::seed_from_u64(6);
        for i in 0..5000u64 {
            sim.access(i % 1000, &mut rng);
            assert!(sim.occupied() <= 64);
        }
        assert_eq!(sim.occupied(), 64, "steady state should be full");
    }
}
