//! §4.1 encoding-waste analysis over Wikipedia-like and CarTel-like
//! tables.
//!
//! Paper: "We analyzed several of the largest tables in the Cartel and
//! Wikipedia databases and found that they can all reduce their physical
//! encoding waste by 16% to 83% … the total amounted to over 23.5 GB
//! (20%) of waste in the tables we inspected."

use nbb_bench::report::{f, print_table};
use nbb_encoding::timestamp::format_epoch;
use nbb_encoding::{analyze_table, ColumnDef, DeclaredType, Schema, SchemaReport, Value};
use nbb_workload::WikiGenerator;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn wikipedia_revision(rows_n: usize) -> (Schema, Vec<Vec<Value>>) {
    let mut g = WikiGenerator::new(21);
    let mut pages = g.pages((rows_n / 20).max(1) as u64);
    let revs = g.revisions(&mut pages, 20);
    let schema = Schema {
        table: "wikipedia.revision".into(),
        columns: vec![
            ColumnDef::new("rev_id", DeclaredType::Int64),
            ColumnDef::new("rev_page", DeclaredType::Int64),
            ColumnDef::new("rev_text_id", DeclaredType::Int64),
            ColumnDef::new("rev_comment", DeclaredType::Str { width: 40 }),
            ColumnDef::new("rev_user", DeclaredType::Int64),
            ColumnDef::new("rev_timestamp", DeclaredType::Str { width: 14 }),
            ColumnDef::new("rev_minor_edit", DeclaredType::Bool),
            ColumnDef::new("rev_deleted", DeclaredType::Bool),
            ColumnDef::new("rev_len", DeclaredType::Int64),
            ColumnDef::new("rev_parent_id", DeclaredType::Int64),
        ],
    };
    let rows = revs
        .iter()
        .take(rows_n)
        .map(|r| {
            vec![
                Value::Int(r.id as i64),
                Value::Int(r.page_id as i64),
                Value::Int(r.text_id as i64),
                Value::Str(r.comment.clone()),
                Value::Int(r.user as i64),
                Value::Str(r.timestamp.clone()),
                Value::Bool(r.minor_edit),
                Value::Bool(r.deleted),
                Value::Int(r.len as i64),
                Value::Int(r.parent_id as i64),
            ]
        })
        .collect();
    (schema, rows)
}

fn wikipedia_page(rows_n: usize) -> (Schema, Vec<Vec<Value>>) {
    let mut g = WikiGenerator::new(22);
    let mut pages = g.pages(rows_n as u64);
    g.revisions(&mut pages, 3); // assign real page_latest values
    let schema = Schema {
        table: "wikipedia.page".into(),
        columns: vec![
            ColumnDef::new("page_id", DeclaredType::Int64),
            ColumnDef::new("page_namespace", DeclaredType::Int64),
            ColumnDef::new("page_title", DeclaredType::Str { width: 28 }),
            ColumnDef::new("page_counter", DeclaredType::Int64),
            ColumnDef::new("page_is_redirect", DeclaredType::Bool),
            ColumnDef::new("page_is_new", DeclaredType::Bool),
            ColumnDef::new("page_touched", DeclaredType::Str { width: 14 }),
            ColumnDef::new("page_latest", DeclaredType::Int64),
            ColumnDef::new("page_len", DeclaredType::Int64),
        ],
    };
    let rows = pages
        .iter()
        .map(|p| {
            vec![
                Value::Int(p.id as i64),
                Value::Int(i64::from(p.namespace)),
                Value::Str(p.title.clone()),
                Value::Int(p.counter as i64),
                Value::Bool(p.is_redirect),
                Value::Bool(p.is_new),
                Value::Str(p.touched.clone()),
                Value::Int(p.latest_rev as i64),
                Value::Int(p.len as i64),
            ]
        })
        .collect();
    (schema, rows)
}

/// CarTel-like GPS trace table (the paper's other database: vehicular
/// telemetry with timestamps, small-range sensor ints, status strings).
fn cartel_locations(rows_n: usize) -> (Schema, Vec<Vec<Value>>) {
    let mut rng = SmallRng::seed_from_u64(23);
    let schema = Schema {
        table: "cartel.locations".into(),
        columns: vec![
            ColumnDef::new("sample_id", DeclaredType::Int64),
            ColumnDef::new("car_id", DeclaredType::Int64),
            ColumnDef::new("ts_string", DeclaredType::Str { width: 14 }),
            ColumnDef::new("lat_micro", DeclaredType::Int64),
            ColumnDef::new("lon_micro", DeclaredType::Int64),
            ColumnDef::new("speed_kmh", DeclaredType::Int64),
            ColumnDef::new("heading_deg", DeclaredType::Int64),
            ColumnDef::new("n_sats", DeclaredType::Int64),
            ColumnDef::new("fix_quality", DeclaredType::Str { width: 16 }),
            ColumnDef::new("valid", DeclaredType::Bool),
        ],
    };
    let rows = (0..rows_n)
        .map(|i| {
            // Boston-area coordinates in microdegrees: narrow ranges.
            vec![
                Value::Int(i as i64 + 1),
                Value::Int(rng.gen_range(1..28)), // CarTel ran ~27 cabs
                Value::Str(format_epoch(rng.gen_range(0..86_400 * 200))),
                Value::Int(42_300_000 + rng.gen_range(0..120_000)),
                Value::Int(-71_200_000 + rng.gen_range(0..200_000)),
                Value::Int(rng.gen_range(0..130)),
                Value::Int(rng.gen_range(0..360)),
                Value::Int(rng.gen_range(3..13)),
                Value::Str(["gps", "dgps", "estimated"][rng.gen_range(0..3)].to_string()),
                Value::Bool(rng.gen_bool(0.97)),
            ]
        })
        .collect();
    (schema, rows)
}

/// Wikipedia's `text` table: revision content blobs. Near-incompressible
/// high-entropy payloads filling most of their declared width — the
/// ballast that pulls *overall* waste down to the paper's ~20% even
/// though metadata tables waste far more.
fn wikipedia_text(rows_n: usize) -> (Schema, Vec<Vec<Value>>) {
    let mut rng = SmallRng::seed_from_u64(24);
    let schema = Schema {
        table: "wikipedia.text".into(),
        columns: vec![
            ColumnDef::new("old_id", DeclaredType::Int64),
            ColumnDef::new("old_text", DeclaredType::Str { width: 2048 }),
            ColumnDef::new("old_flags", DeclaredType::Str { width: 16 }),
        ],
    };
    let alphabet: Vec<char> =
        "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/".chars().collect();
    let rows = (0..rows_n)
        .map(|i| {
            let len = rng.gen_range(1_600..=2_048);
            let text: String =
                (0..len).map(|_| alphabet[rng.gen_range(0..alphabet.len())]).collect();
            vec![
                Value::Int(i as i64 + 1),
                Value::Str(text),
                Value::Str(["utf-8,gzip", "utf-8"][rng.gen_range(0..2)].to_string()),
            ]
        })
        .collect();
    (schema, rows)
}

fn main() {
    let tables: Vec<(Schema, Vec<Vec<Value>>)> = vec![
        wikipedia_revision(20_000),
        wikipedia_page(10_000),
        cartel_locations(20_000),
        wikipedia_text(4_000),
    ];
    let mut reports: Vec<SchemaReport> = Vec::new();
    for (schema, rows) in &tables {
        reports.push(analyze_table(schema, rows));
    }

    let rows: Vec<Vec<String>> = reports
        .iter()
        .map(|r| {
            vec![
                r.table.clone(),
                r.rows.to_string(),
                f(r.declared_bytes() / 1024.0, 0),
                f(r.optimized_bytes() / 1024.0, 0),
                f(r.waste_fraction() * 100.0, 1),
            ]
        })
        .collect();
    print_table(
        "4.1: encoding waste per table (declared vs optimized physical encoding)",
        &["table", "rows", "declared_KB", "optimized_KB", "waste_%"],
        &rows,
    );

    for r in &reports {
        println!();
        print!("{}", r.render());
    }

    let declared: f64 = reports.iter().map(|r| r.declared_bytes()).sum();
    let optimized: f64 = reports.iter().map(|r| r.optimized_bytes()).sum();
    println!(
        "\noverall: {:.1}% waste across {} tables (paper band: 16%..83% per table, ~20% overall)",
        (1.0 - optimized / declared) * 100.0,
        reports.len()
    );
}
