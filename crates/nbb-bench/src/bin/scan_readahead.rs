//! Cold sequential range scans with and without cursor readahead, as a
//! CI-archivable experiment: the `benches/range_scans.rs` comparison at
//! binary scale, with the numbers written to `BENCH_scans.json` (rows/s,
//! device round-trips, and prefetch verdict counters per configuration)
//! so trajectories can be tracked per commit. Pass `--smoke` for the
//! quick CI gate scale.
//!
//! The device is a [`LatencyDisk`] charging a fixed latency per
//! round-trip — per *batch*, not per page, the way a real device
//! amortizes a queue of adjacent requests — so the printed speedup is
//! the round-trip amortization of the batched read path, not CPU noise.

use nbb_bench::report::{f, print_table};
use nbb_core::db::{Database, DbConfig};
use nbb_core::table::{FieldSpec, IndexSpec};
use nbb_storage::{DiskManager, DiskModel, LatencyDisk, PageId, PoolStats};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

const PAGE_SIZE: usize = 4096;
const READ_NS: u64 = 250_000;

/// 24-byte tuple: key(8) | value(8) | filler(8).
fn tuple(key: u64, value: u64) -> Vec<u8> {
    let mut t = Vec::with_capacity(24);
    t.extend_from_slice(&key.to_be_bytes());
    t.extend_from_slice(&value.to_le_bytes());
    t.extend_from_slice(&[0u8; 8]);
    t
}

struct Run {
    readahead: usize,
    elapsed: Duration,
    rows: u64,
    stats: PoolStats,
}

impl Run {
    fn rows_per_s(&self) -> f64 {
        self.rows as f64 / self.elapsed.as_secs_f64()
    }
}

/// Builds the table over free writes, pre-warms every cache line, sweeps
/// the index pool cold, and times one full ordered projected scan
/// against the latency-charging reads. (Mirrors the bench in
/// `benches/range_scans.rs`; see there for why the warm pass matters.)
fn cold_scan(rows: u64, readahead: usize) -> Run {
    let model = DiskModel { read_ns: READ_NS, write_ns: 0 };
    let heap = Arc::new(LatencyDisk::new(PAGE_SIZE, model));
    let index = Arc::new(LatencyDisk::new(PAGE_SIZE, model));
    let config = DbConfig { page_size: PAGE_SIZE, readahead, ..DbConfig::default() };
    let db = Database::with_disks(
        config,
        Arc::clone(&heap) as Arc<dyn DiskManager>,
        Arc::clone(&index) as Arc<dyn DiskManager>,
    )
    .expect("fresh latency disks attach");
    let t = db.create_table("t", 24).expect("create table");
    t.create_index(IndexSpec::cached("pk", FieldSpec::new(0, 8), vec![FieldSpec::new(8, 8)]))
        .expect("create index");
    for k in 0..rows {
        t.insert(&tuple(k, k.wrapping_mul(3))).expect("insert");
    }

    let pk = t.index("pk").expect("index handle");
    assert_eq!(pk.range_projected_all().filter(|r| r.is_ok()).count() as u64, rows);

    let index_pool = db.index_pool();
    index_pool.flush_all().expect("flush index pool");
    for id in 0..index_pool.disk().num_pages() {
        let _ = index_pool.evict_page(PageId(id));
    }
    index_pool.reset_stats();

    let start = Instant::now();
    let scanned = pk.range_projected_all().filter(|r| r.is_ok()).count() as u64;
    let elapsed = start.elapsed();
    let stats = index_pool.stats();
    assert_eq!(scanned, rows, "scan must visit every row");
    Run { readahead, elapsed, rows: scanned, stats }
}

/// Renders the runs as the `BENCH_scans.json` body. Hand-rolled (the
/// workspace has no serde): stable key order, numbers only.
fn scans_json(scale_name: &str, rows: u64, runs: &[Run], speedup: f64) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"benchmark\": \"range_scans\",");
    let _ = writeln!(out, "  \"scale\": \"{scale_name}\",");
    let _ = writeln!(
        out,
        "  \"workload\": {{\"rows\": {rows}, \"read_ns\": {READ_NS}, \"page_size\": {PAGE_SIZE}}},"
    );
    let _ = writeln!(out, "  \"speedup\": {speedup:.3},");
    out.push_str("  \"runs\": [\n");
    for (i, r) in runs.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"readahead\": {}, \"rows_per_s\": {:.1}, \"elapsed_ms\": {:.3}, \
             \"read_pages\": {}, \"read_batches\": {}, \"prefetch_issued\": {}, \
             \"prefetch_hits\": {}, \"prefetch_wasted\": {}}}{}",
            r.readahead,
            r.rows_per_s(),
            r.elapsed.as_secs_f64() * 1e3,
            r.stats.read_pages,
            r.stats.read_batches,
            r.stats.prefetch_issued,
            r.stats.prefetch_hits,
            r.stats.prefetch_wasted,
            if i + 1 < runs.len() { "," } else { "" }
        );
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (scale_name, rows) = if smoke { ("smoke", 10_000u64) } else { ("full", 50_000u64) };

    let runs: Vec<Run> = [0usize, 8, 32].iter().map(|&k| cold_scan(rows, k)).collect();

    let mut table = Vec::new();
    for r in &runs {
        table.push(vec![
            r.readahead.to_string(),
            f(r.rows_per_s() / 1000.0, 1),
            f(r.elapsed.as_secs_f64() * 1e3, 1),
            r.stats.read_pages.to_string(),
            r.stats.read_batches.to_string(),
            format!(
                "{}/{}/{}",
                r.stats.prefetch_issued, r.stats.prefetch_hits, r.stats.prefetch_wasted
            ),
        ]);
    }
    print_table(
        &format!(
            "cold sequential scan, {rows} rows @ {} us/round-trip ({scale_name} scale)",
            READ_NS / 1000
        ),
        &["readahead", "krows_s", "ms", "pages", "batches", "issued/hit/wasted"],
        &table,
    );

    // Headline: the largest-readahead run against the readahead-off run.
    let speedup = runs[runs.len() - 1].rows_per_s() / runs[0].rows_per_s();
    println!("\nspeedup: {speedup:.1}x (readahead {} vs none)", runs[runs.len() - 1].readahead);
    assert!(
        speedup >= 3.0,
        "cursor readahead must deliver >= 3x cold scan throughput, got {speedup:.2}x"
    );

    let json = scans_json(scale_name, rows, &runs, speedup);
    std::fs::write("BENCH_scans.json", &json).expect("write BENCH_scans.json");
    println!("wrote BENCH_scans.json ({} runs, {scale_name} scale)", runs.len());
}
