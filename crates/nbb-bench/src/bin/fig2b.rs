//! Figure 2(b): cost per lookup vs index-cache hit rate, one line per
//! buffer-pool hit rate (0, 60, 90, 96, 100%), log-scale y in ms.
//!
//! Costs are measured CPU (real leaf-page probes, real buffer pool)
//! plus modeled disk latency (10 ms/read, DESIGN.md §4 substitution).

use nbb_bench::cost_sim::{CostSim, CostSimConfig};
use nbb_bench::report::{f, print_table};

fn main() {
    let cfg = CostSimConfig::default();
    let lookups = cfg.lookups;
    let mut sim = CostSim::build(cfg, 7);
    let cache_rates = [0.0, 0.2, 0.4, 0.6, 0.8, 0.9, 0.96, 1.0];
    let bp_rates = [0.0, 0.6, 0.9, 0.96, 1.0];

    let mut rows = Vec::new();
    for &bp in &bp_rates {
        for &ch in &cache_rates {
            let p = sim.run_point(ch, bp, true, 99);
            rows.push(vec![
                f(bp * 100.0, 0),
                f(ch * 100.0, 0),
                f(p.total_ms(), 6),
                f(p.cpu_ns / 1000.0, 2),
                f(p.io_ns / 1e6, 4),
            ]);
        }
    }
    print_table(
        &format!("Figure 2(b): cost/lookup as cache and buffer-pool hit rates vary ({lookups} lookups/point, 10ms disk model)"),
        &["bp_hit_%", "cache_hit_%", "cost_ms", "cpu_us", "io_ms"],
        &rows,
    );
    println!("\npaper shape: cost monotonically falls with cache hit rate; lines order by");
    println!("buffer-pool hit rate; spread spans orders of magnitude (log-scale axis).");
}
