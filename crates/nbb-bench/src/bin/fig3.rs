//! Figure 3: cost per query for access-based clustering of the revision
//! table — bars 0%, 54%, 100%, and Partition.
//!
//! End-to-end over the real storage stack (heaps, B+Trees, buffer
//! pools, simulated 10 ms disk). The paper reports 1.8× (54%), 2.15×
//! (100%), and 8.4× (Partition) over the unclustered baseline.

use nbb_bench::fig3::{run_all, Fig3Config};
use nbb_bench::report::{f, print_table};

fn main() {
    let cfg = Fig3Config::default();
    println!(
        "revision table: {} pages x ~{} revisions, {} lookups (99.9% hot), heap_frames={}, index_frames={}",
        cfg.n_pages, cfg.revs_per_page, cfg.lookups, cfg.heap_frames, cfg.index_frames
    );
    let results = run_all(&cfg).expect("experiment runs");
    let base = results[0].cost_ms;
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.label.clone(),
                f(r.cost_ms, 4),
                f(base / r.cost_ms, 2),
                f(r.io_ms, 4),
                f(r.cpu_ms, 4),
                r.disk_reads.to_string(),
                format!("{}/{}", r.index_leaves.0, r.index_leaves.1),
            ]
        })
        .collect();
    print_table(
        "Figure 3: cost per query (ms) by clustering configuration",
        &["config", "cost_ms", "speedup", "io_ms", "cpu_ms", "disk_reads", "idx_leaves(hot/main)"],
        &rows,
    );
    println!("\npaper: 54% -> 1.8x, 100% -> 2.15x, Partition -> 8.4x (index fits in RAM).");
}
