//! The abstract's headline numbers: "reduce memory requirements … by up
//! to 17.8× while increasing query performance (by up to 8×)".
//!
//! * Memory: the §3.1 partition result — the hot-partition index vs the
//!   full-table index (paper: 27.1 GB → 1.4 GB ≈ 19×; abstract: 17.8×),
//!   measured here from the real Figure-3 build.
//! * Query performance: the Figure 3 Partition bar vs the unclustered
//!   baseline (paper: 8.4×).

use nbb_bench::fig3::{run_variant, Fig3Config, Fig3Variant};
use nbb_bench::report::{f, print_table};

fn main() {
    let cfg = Fig3Config::default();
    let base = run_variant(&cfg, Fig3Variant::Cluster(0.0)).expect("baseline");
    let part = run_variant(&cfg, Fig3Variant::Partition).expect("partition");

    // Memory: index pages needed to serve 99.9% of the workload.
    let full_leaves = base.index_leaves.1; // single full-table index
    let hot_leaves = part.index_leaves.0; // hot partition's index
    let mem_reduction = full_leaves as f64 / hot_leaves.max(1) as f64;
    let speedup = base.cost_ms / part.cost_ms;

    print_table(
        "Headline reproduction (abstract claims)",
        &["metric", "measured", "paper"],
        &[
            vec![
                "hot-path index memory reduction".into(),
                format!("{}x ({} -> {} leaves)", f(mem_reduction, 1), full_leaves, hot_leaves),
                "17.8x (27.1GB -> 1.4GB index)".into(),
            ],
            vec![
                "query speedup (partition vs baseline)".into(),
                format!("{}x ({} -> {} ms)", f(speedup, 1), f(base.cost_ms, 3), f(part.cost_ms, 3)),
                "8.4x (Figure 3)".into(),
            ],
        ],
    );
    println!("\nscale note: tables are scaled down ~1000x from Wikipedia; ratios, not absolutes,");
    println!("are the reproduction target (see EXPERIMENTS.md).");
}
