//! Figure 2(a): index-cache hit rate vs cache size.
//!
//! "Each point is the average hit rate after 100k lookups and the x-axis
//! is the percentage of the items that the cache can hold." Two curves:
//! `Swap` (read-only) and `Shrink` (read/insert overwrites half the
//! cache over the run).
//!
//! We print the paper's α = 0.5 series plus an α = 1.0 series: a literal
//! zipf(0.5) caps ANY 25%-sized cache at the top-25% mass (= 50%), so
//! the paper's ">90% at 25%" level is only reachable under a steeper
//! parameterization — see EXPERIMENTS.md. The *shape* (fast rise,
//! Shrink tracking Swap within a few points) holds for both.

use nbb_bench::report::{f, print_table};
use nbb_bench::swap_sim::{fig2a_point, Fig2aMode};

fn main() {
    let n_items = 20_000;
    let lookups = 100_000;
    let sizes = [1.0, 2.0, 5.0, 10.0, 15.0, 25.0, 40.0, 60.0, 80.0, 100.0];

    for alpha in [0.5, 1.0] {
        let mut rows = Vec::new();
        for &pct in &sizes {
            let swap = fig2a_point(n_items, pct, Fig2aMode::Swap, lookups, alpha, 42);
            let shrink = fig2a_point(n_items, pct, Fig2aMode::Shrink, lookups, alpha, 42);
            rows.push(vec![f(pct, 0), f(swap, 3), f(shrink, 3), f(swap - shrink, 3)]);
        }
        print_table(
            &format!(
                "Figure 2(a): hit rate vs cache size (zipf alpha={alpha}, {n_items} items, {lookups} lookups/point)"
            ),
            &["cache_%", "swap", "shrink", "delta"],
            &rows,
        );
    }
    println!("\npaper: Swap >90% at 25% cache; Shrink ~5 points below Swap.");
    println!("note : alpha=0.5 information bound at 25% cache is 50% (see EXPERIMENTS.md).");
}
