//! Hit-rate ablations for the cache-management design choices:
//!
//! * the swap-toward-S policy vs random placement without promotion
//!   (does promotion actually protect hot entries? — §2.1.1's core
//!   design claim);
//! * bucket size `N` (ring granularity of the promotion ladder).
//!
//! Both are evaluated under the Shrink workload, where placement
//! matters: the periphery gets overwritten, so hit rates only survive
//! if hot items migrated inward.

use nbb_bench::report::{f, print_table};
use nbb_bench::swap_sim::{fig2a_point_with, Fig2aMode, Policy};

fn main() {
    let n_items = 20_000;
    let lookups = 100_000;
    let alpha = 1.0;

    // Policy ablation across cache sizes.
    let mut rows = Vec::new();
    for &pct in &[5.0, 10.0, 25.0, 50.0] {
        let paper = fig2a_point_with(
            n_items,
            pct,
            Fig2aMode::Shrink,
            lookups,
            alpha,
            3,
            8,
            Policy::PaperSwap,
        );
        let random = fig2a_point_with(
            n_items,
            pct,
            Fig2aMode::Shrink,
            lookups,
            alpha,
            3,
            8,
            Policy::RandomNoPromote,
        );
        rows.push(vec![f(pct, 0), f(paper, 3), f(random, 3), f(paper - random, 3)]);
    }
    print_table(
        &format!("ablation: swap-toward-S vs random/no-promotion (Shrink workload, alpha={alpha})"),
        &["cache_%", "paper_policy", "random_no_promote", "advantage"],
        &rows,
    );

    // Bucket size ablation at the paper's 25% operating point.
    let mut rows = Vec::new();
    for &n in &[2usize, 4, 8, 16, 32, 64] {
        let swap = fig2a_point_with(
            n_items,
            25.0,
            Fig2aMode::Swap,
            lookups,
            alpha,
            3,
            n,
            Policy::PaperSwap,
        );
        let shrink = fig2a_point_with(
            n_items,
            25.0,
            Fig2aMode::Shrink,
            lookups,
            alpha,
            3,
            n,
            Policy::PaperSwap,
        );
        rows.push(vec![n.to_string(), f(swap, 3), f(shrink, 3)]);
    }
    print_table(
        "ablation: bucket size N at 25% cache",
        &["bucket_slots", "swap_hit", "shrink_hit"],
        &rows,
    );
    println!("\nexpectation: promotion should protect hot entries under Shrink; N trades");
    println!("promotion granularity against swap distance (flat optimum is fine).");
}
