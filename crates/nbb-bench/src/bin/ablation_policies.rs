//! Hit-rate ablations for the cache-management design choices:
//!
//! * the swap-toward-S policy vs random placement without promotion
//!   (does promotion actually protect hot entries? — §2.1.1's core
//!   design claim);
//! * bucket size `N` (ring granularity of the promotion ladder);
//! * static spare-byte splits vs the self-tuning controller on the
//!   shifting workload (hot-set migration + projection-mix flip).
//!
//! The first two are evaluated under the Shrink workload, where
//! placement matters: the periphery gets overwritten, so hit rates
//! only survive if hot items migrated inward.
//!
//! Besides the stdout tables, the tuning comparison is written to
//! `BENCH_ablations.json` (hits, hit rate, and ops/s per policy per
//! phase) so CI can archive the numbers per commit. Pass `--smoke`
//! to run the tuning comparison at test scale (CI's quick gate).

use nbb_bench::report::{f, print_table};
use nbb_bench::swap_sim::{fig2a_point_with, Fig2aMode, Policy};
use nbb_bench::tuning::{run_all, PolicyScore, TuningScale};
use std::fmt::Write as _;

/// Renders the tuning comparison as the `BENCH_ablations.json` body.
/// Hand-rolled (the workspace has no serde): stable key order, one
/// policy object per element, numbers only.
fn tuning_json(scale_name: &str, scale: &TuningScale, results: &[PolicyScore]) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"benchmark\": \"tuning_policies\",");
    let _ = writeln!(out, "  \"scale\": \"{scale_name}\",");
    let _ = writeln!(
        out,
        "  \"workload\": {{\"rows\": {}, \"lookups_per_chunk\": {}, \"chunks_per_phase\": {}, \
         \"warmup_chunks\": {}, \"budget_bytes\": {}}},",
        scale.rows,
        scale.lookups_per_chunk,
        scale.chunks_per_phase,
        scale.warmup_chunks,
        scale.budget_bytes
    );
    out.push_str("  \"policies\": [\n");
    for (i, r) in results.iter().enumerate() {
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"policy\": \"{}\",", r.policy.name());
        let _ = writeln!(out, "      \"total_hits\": {},", r.total_hits());
        out.push_str("      \"phases\": [\n");
        for (p, ph) in r.phases.iter().enumerate() {
            let _ = writeln!(
                out,
                "        {{\"phase\": {}, \"lookups\": {}, \"hits\": {}, \"hit_rate\": {:.4}, \
                 \"ops_per_s\": {:.1}}}{}",
                p + 1,
                ph.lookups,
                ph.hits,
                ph.hits as f64 / ph.lookups as f64,
                ph.ops_per_s(),
                if p + 1 < r.phases.len() { "," } else { "" }
            );
        }
        out.push_str("      ],\n");
        let _ = writeln!(out, "      \"tuner_decisions\": {}", r.decisions.len());
        let _ = writeln!(out, "    }}{}", if i + 1 < results.len() { "," } else { "" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let n_items = 20_000;
    let lookups = 100_000;
    let alpha = 1.0;

    // Policy ablation across cache sizes.
    let mut rows = Vec::new();
    for &pct in &[5.0, 10.0, 25.0, 50.0] {
        let paper = fig2a_point_with(
            n_items,
            pct,
            Fig2aMode::Shrink,
            lookups,
            alpha,
            3,
            8,
            Policy::PaperSwap,
        );
        let random = fig2a_point_with(
            n_items,
            pct,
            Fig2aMode::Shrink,
            lookups,
            alpha,
            3,
            8,
            Policy::RandomNoPromote,
        );
        rows.push(vec![f(pct, 0), f(paper, 3), f(random, 3), f(paper - random, 3)]);
    }
    print_table(
        &format!("ablation: swap-toward-S vs random/no-promotion (Shrink workload, alpha={alpha})"),
        &["cache_%", "paper_policy", "random_no_promote", "advantage"],
        &rows,
    );

    // Bucket size ablation at the paper's 25% operating point.
    let mut rows = Vec::new();
    for &n in &[2usize, 4, 8, 16, 32, 64] {
        let swap = fig2a_point_with(
            n_items,
            25.0,
            Fig2aMode::Swap,
            lookups,
            alpha,
            3,
            n,
            Policy::PaperSwap,
        );
        let shrink = fig2a_point_with(
            n_items,
            25.0,
            Fig2aMode::Shrink,
            lookups,
            alpha,
            3,
            n,
            Policy::PaperSwap,
        );
        rows.push(vec![n.to_string(), f(swap, 3), f(shrink, 3)]);
    }
    print_table(
        "ablation: bucket size N at 25% cache",
        &["bucket_slots", "swap_hit", "shrink_hit"],
        &rows,
    );
    println!("\nexpectation: promotion should protect hot entries under Shrink; N trades");
    println!("promotion granularity against swap distance (flat optimum is fine).");

    // Spend-policy ablation: static splits of the leaf-cache budget vs
    // the self-tuning controller, on the shifting two-phase workload.
    let (scale_name, scale) =
        if smoke { ("short", TuningScale::short()) } else { ("full", TuningScale::full()) };
    let results = run_all(&scale);
    let mut rows = Vec::new();
    for r in &results {
        let mut row = vec![r.policy.name().to_string()];
        for ph in &r.phases {
            row.push(format!("{}", ph.hits));
            row.push(f(ph.hits as f64 / ph.lookups as f64, 3));
            row.push(f(ph.ops_per_s() / 1000.0, 0));
        }
        row.push(format!("{}", r.total_hits()));
        rows.push(row);
    }
    print_table(
        &format!(
            "ablation: spare-byte spend policy on the shifting workload \
             ({scale_name} scale, budget {} KiB)",
            scale.budget_bytes / 1024
        ),
        &["policy", "p1_hits", "p1_rate", "p1_kops", "p2_hits", "p2_rate", "p2_kops", "total_hits"],
        &rows,
    );
    for d in results.iter().flat_map(|r| &r.decisions) {
        println!("  {d}");
    }

    let json = tuning_json(scale_name, &scale, &results);
    std::fs::write("BENCH_ablations.json", &json).expect("write BENCH_ablations.json");
    println!("\nwrote BENCH_ablations.json ({} policies, {scale_name} scale)", results.len());
}
