//! §2.1.4 capacity analysis: how many cache items fit in the
//! `name_title` index's free space?
//!
//! Paper: "The index contains 360 MB of key data and, assuming that the
//! index is 68% full and all 4 fields are cached (25 bytes/cache item),
//! the index can store up to 7.9 million cache items — representing
//! over 70% of the tuples in the page table."
//!
//! Two columns: the analytic count from our page geometry, and a
//! measured count from a real bulk-loaded index at 68% fill.

use nbb_bench::report::{f, print_table};
use nbb_btree::cache::CacheConfig;
use nbb_btree::node::{node_capacity, NODE_FOOTER_SIZE, NODE_HEADER_SIZE};
use nbb_btree::{BTree, BTreeOptions};
use nbb_storage::{BufferPool, DiskManager, InMemoryDisk};
use std::sync::Arc;

fn main() {
    // The paper's parameters.
    let page_size = 8192usize;
    let key_size = 32usize; // (namespace u32, title char[28])
    let entry = key_size + 8; // key + tuple pointer
    let item = 25usize; // 8-byte id + 17 bytes of cached fields
    let fill = 0.68f64;
    let key_data_mb = 360.0;
    let n_keys = (key_data_mb * 1024.0 * 1024.0 / entry as f64) as u64;

    // Analytic: slots per leaf at 68% fill.
    let cap = node_capacity(page_size, key_size);
    let per_leaf_keys = (cap as f64 * fill) as usize;
    let used = NODE_HEADER_SIZE + NODE_FOOTER_SIZE + per_leaf_keys * (entry + 2);
    let free = page_size - used;
    let slots_analytic = free / item;
    let leaves = n_keys as f64 / per_leaf_keys as f64;
    let total_items_analytic = leaves * slots_analytic as f64;

    // Measured: bulk-load a scaled-down index and count real slots.
    let disk: Arc<dyn DiskManager> = Arc::new(InMemoryDisk::new(page_size));
    let pool = Arc::new(BufferPool::new(disk, 4096));
    let n_scaled = 200_000u64;
    let opts = BTreeOptions {
        cache: Some(CacheConfig { payload_size: 17, bucket_slots: 8, log_threshold: 64 }),
        cache_seed: 1,
        ..Default::default()
    };
    let entries = (0..n_scaled).map(|i| {
        let mut k = vec![0u8; key_size];
        k[..8].copy_from_slice(&i.to_be_bytes());
        (k, i)
    });
    let tree = BTree::bulk_load(pool, key_size, opts, entries, fill).expect("bulk load");
    let stats = tree.index_stats().expect("stats");
    let slots_measured = stats.cache_slots as f64 / stats.leaf_pages as f64;
    let scale = n_keys as f64 / n_scaled as f64;
    let total_items_measured = stats.cache_slots as f64 * scale;

    print_table(
        "2.1.4 analysis: cache capacity of the name_title index (360 MB keys, 68% fill, 25 B items)",
        &["quantity", "analytic", "measured(real index)"],
        &[
            vec!["keys in index".into(), n_keys.to_string(), format!("{n_scaled} (scaled)")],
            vec!["keys per leaf".into(), per_leaf_keys.to_string(), f(stats.keys as f64 / stats.leaf_pages as f64, 1)],
            vec!["cache slots per leaf".into(), slots_analytic.to_string(), f(slots_measured, 1)],
            vec![
                "total cache items (M)".into(),
                f(total_items_analytic / 1e6, 2),
                f(total_items_measured / 1e6, 2),
            ],
        ],
    );
    let page_table_rows = 11.0e6; // paper: 7.9M items ≈ 70% of the page table
    println!(
        "\ncoverage of an ~11M-row page table: analytic {:.0}%, measured {:.0}% (paper: >70%, 7.9M items)",
        total_items_analytic / page_table_rows * 100.0,
        total_items_measured / page_table_rows * 100.0
    );
}
