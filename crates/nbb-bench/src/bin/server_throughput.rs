//! End-to-end network front-door throughput as a CI-archivable
//! experiment: pipelined client fleets against `nbb-server` over
//! loopback TCP, depth 1 versus depth 16 at equal connection count,
//! with the numbers written to `BENCH_server.json` so trajectories can
//! be tracked per commit. Pass `--smoke` for the quick CI gate scale.
//!
//! The acceptance gate asserts here: depth-16 pipelining must deliver
//! at least 2x the depth-1 throughput, because K in-flight requests'
//! modeled disk waits overlap across the worker pool where depth-1
//! pays one full round trip (wire + fault) per request.

use nbb_bench::report::{f, print_table};
use nbb_bench::serverload::{run, server_json, LoadSpec, READ_NS};

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    // Both scales run 2 connections: depth-1 at M conns already
    // overlaps M faults across the fleet, so a small conn count is
    // what isolates the *pipelining* overlap the gate asserts on.
    let (scale_name, conns, ops_per_conn) =
        if smoke { ("smoke", 2usize, 300usize) } else { ("full", 2usize, 3000usize) };

    let base = LoadSpec { rows: 50_000, conns, depth: 1, ops_per_conn, keys_per_op: 4, workers: 8 };
    let runs: Vec<_> =
        [1usize, 4, 16].iter().map(|&depth| run(LoadSpec { depth, ..base })).collect();

    let mut table = Vec::new();
    for r in &runs {
        table.push(vec![
            r.spec.conns.to_string(),
            r.spec.depth.to_string(),
            f(r.requests_per_s(), 1),
            f(r.rows_per_s(), 1),
            f(r.elapsed.as_secs_f64() * 1e3, 1),
            r.stats.queue_full_parks.to_string(),
        ]);
    }
    print_table(
        &format!(
            "pipelined get_many over loopback, {conns} conns x {ops_per_conn} ops @ {} us/fault \
             ({scale_name} scale)",
            READ_NS / 1000
        ),
        &["conns", "depth", "req_s", "rows_s", "ms", "parks"],
        &table,
    );

    // Headline: deepest pipeline against depth 1 at equal conn count.
    let deep = &runs[runs.len() - 1];
    let ratio = deep.requests_per_s() / runs[0].requests_per_s();
    println!(
        "\npipelining speedup: {ratio:.1}x (depth {} vs depth 1, {} conns each)",
        deep.spec.depth, deep.spec.conns
    );
    assert!(
        ratio >= 2.0,
        "depth-16 pipelining must deliver >= 2x depth-1 throughput, got {ratio:.2}x"
    );

    let json = server_json(scale_name, &runs, ratio);
    std::fs::write("BENCH_server.json", &json).expect("write BENCH_server.json");
    println!("wrote BENCH_server.json ({} runs, {scale_name} scale)", runs.len());
}
