//! Figure 2(c): index-cache overhead with a 100%-hit buffer pool.
//!
//! Two curves in µs/lookup: `cache` (probe the leaf cache, fall back to
//! the buffer pool on a miss) and `nocache` (straight to the buffer
//! pool). The paper reports ~0.3 µs probe overhead at 0% hit rate, a
//! crossover near 35%, and a 2.7× win at 100%.
//!
//! Run with `--release`; relative costs in debug builds are meaningless.

use nbb_bench::cost_sim::{CostSim, CostSimConfig};
use nbb_bench::report::{f, print_table};

fn main() {
    let cfg = CostSimConfig { lookups: 200_000, ..Default::default() };
    let mut sim = CostSim::build(cfg, 13);
    let nocache = sim.run_point(0.0, 1.0, false, 17);
    let rates = [0.0, 0.1, 0.2, 0.35, 0.5, 0.65, 0.8, 0.9, 1.0];

    let mut rows = Vec::new();
    let mut crossover: Option<f64> = None;
    for &ch in &rates {
        let p = sim.run_point(ch, 1.0, true, 17);
        if crossover.is_none() && p.total_us() <= nocache.total_us() {
            crossover = Some(ch);
        }
        rows.push(vec![
            f(ch * 100.0, 0),
            f(p.total_us(), 3),
            f(nocache.total_us(), 3),
            f(p.total_us() - nocache.total_us(), 3),
        ]);
    }
    print_table(
        "Figure 2(c): cache vs nocache cost/lookup, buffer pool hit rate = 100%",
        &["cache_hit_%", "cache_us", "nocache_us", "overhead_us"],
        &rows,
    );
    let full = sim.run_point(1.0, 1.0, true, 17);
    println!(
        "\nmeasured: overhead at 0% = {:.3}us, crossover <= {}, speedup at 100% = {:.2}x",
        sim.run_point(0.0, 1.0, true, 17).total_us() - nocache.total_us(),
        crossover.map_or("none".to_string(), |c| format!("{:.0}%", c * 100.0)),
        nocache.total_us() / full.total_us(),
    );
    println!("paper   : overhead 0.3us, crossover ~35%, speedup 2.7x");
}
