//! The Figure 3 harness: access-based clustering of Wikipedia's
//! revision table.
//!
//! Four configurations over the same synthetic revision table and the
//! same 99.9%-hot lookup trace (§3.1):
//!
//! * `0%` — append-order placement: each page's latest revision is
//!   scattered ≈1 per data page;
//! * `54%`, `100%` — that fraction of hot tuples relocated
//!   (delete+append) to the heap tail;
//! * `Partition` — hot tuples in their own table with their own (small)
//!   index.
//!
//! All variants share one pair of constrained buffer pools, so wins come
//! from working-set shrinkage exactly as in the paper: clustering shrinks
//! the *heap* working set; partitioning additionally shrinks the *index*
//! working set ("reducing the index size … allows the entire index to
//! fit in RAM").

use nbb_core::db::{Database, DbConfig};
use nbb_core::table::{FieldSpec, IndexSpec, Table};
use nbb_storage::disk::DiskModel;
use nbb_storage::error::Result;
use nbb_storage::rid::RecordId;
use nbb_workload::{revision_lookup_trace, TraceOp, WikiGenerator, REVISION_ROW_WIDTH};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

/// Experiment scale and resources.
#[derive(Debug, Clone)]
pub struct Fig3Config {
    /// Wiki pages (hot set size = one latest revision each).
    pub n_pages: u64,
    /// Revisions per page (20 → hot set is 5% of the table).
    pub revs_per_page: usize,
    /// Lookups in the measured trace.
    pub lookups: usize,
    /// Heap buffer-pool frames.
    pub heap_frames: usize,
    /// Index buffer-pool frames.
    pub index_frames: usize,
    /// Disk latency model.
    pub disk: DiskModel,
    /// Trace/generator seed.
    pub seed: u64,
}

impl Default for Fig3Config {
    fn default() -> Self {
        Fig3Config {
            n_pages: 2_000,
            revs_per_page: 20,
            lookups: 30_000,
            // Sized so that: the full-table index thrashes while the hot
            // partition's index fits (the paper's 27.1 GB vs 1.4 GB), and
            // the hot *heap* only partially fits even when clustered —
            // in the paper the data pages stay disk-resident, so the
            // Partition bar keeps paying some heap I/O.
            heap_frames: 24,
            index_frames: 10,
            disk: DiskModel::default(),
            seed: 11,
        }
    }
}

/// Which Figure 3 bar to run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fig3Variant {
    /// Cluster the given fraction of hot tuples (0.0 = baseline).
    Cluster(f64),
    /// Separate hot partition with its own index.
    Partition,
}

impl Fig3Variant {
    /// Bar label as in the paper.
    pub fn label(&self) -> String {
        match self {
            Fig3Variant::Cluster(f) => format!("{:.0}%", f * 100.0),
            Fig3Variant::Partition => "Partition".to_string(),
        }
    }
}

/// One measured bar.
#[derive(Debug, Clone)]
pub struct Fig3Result {
    /// Bar label.
    pub label: String,
    /// Mean cost per lookup in milliseconds (CPU + simulated I/O).
    pub cost_ms: f64,
    /// Measured CPU portion (ms).
    pub cpu_ms: f64,
    /// Simulated I/O portion (ms).
    pub io_ms: f64,
    /// Disk reads issued during the measured phase.
    pub disk_reads: u64,
    /// Heap pages of the (hot, cold-or-full) tables.
    pub heap_pages: (usize, usize),
    /// Index leaf pages of the (hot, cold-or-full) indexes.
    pub index_leaves: (usize, usize),
}

const REV_ID: FieldSpec = FieldSpec { offset: 0, len: 8 };

fn rev_index() -> IndexSpec {
    IndexSpec::plain("by_rev_id", REV_ID)
}

fn be_key(id: u64) -> [u8; 8] {
    id.to_be_bytes()
}

/// Builds the wiki, returns `(rows_in_insert_order, hot_rev_ids)`.
fn build_rows(cfg: &Fig3Config) -> (Vec<Vec<u8>>, Vec<u64>) {
    let mut gen = WikiGenerator::new(cfg.seed);
    let mut pages = gen.pages(cfg.n_pages);
    let revs = gen.revisions(&mut pages, cfg.revs_per_page);
    let rows: Vec<Vec<u8>> = revs
        .iter()
        .map(|r| {
            // Re-key on big-endian id so the index key is memcmp-ordered.
            let mut row = r.encode();
            row[..8].copy_from_slice(&be_key(r.id));
            row
        })
        .collect();
    let hot: Vec<u64> = pages.iter().map(|p| p.latest_rev).collect();
    (rows, hot)
}

fn trace(cfg: &Fig3Config) -> Vec<u64> {
    let mut gen = WikiGenerator::new(cfg.seed);
    let mut pages = gen.pages(cfg.n_pages);
    let revs = gen.revisions(&mut pages, cfg.revs_per_page);
    revision_lookup_trace(&pages, revs.len() as u64, cfg.lookups, 0.999, 0.5, cfg.seed ^ 0xF3)
        .into_iter()
        .map(|op| match op {
            TraceOp::RevisionLookup { rev_id } => rev_id,
            _ => unreachable!("revision traces only contain lookups"),
        })
        .collect()
}

/// Runs one Figure 3 variant end to end.
pub fn run_variant(cfg: &Fig3Config, variant: Fig3Variant) -> Result<Fig3Result> {
    let db = Database::open(DbConfig {
        page_size: 8192,
        heap_frames: cfg.heap_frames,
        index_frames: cfg.index_frames,
        disk_model: Some(cfg.disk),
        ..DbConfig::default()
    });
    let (rows, hot_ids) = build_rows(cfg);
    let ops = trace(cfg);

    type LookupFn = Box<dyn Fn(u64) -> Result<bool>>;
    let (lookup, hot_table, main_table): (LookupFn, Arc<Table>, Arc<Table>);
    match variant {
        Fig3Variant::Cluster(fraction) => {
            let t = db.create_table("revision", REVISION_ROW_WIDTH)?;
            for row in &rows {
                t.insert(row)?;
            }
            t.create_index(rev_index())?;
            // Collect hot RIDs via the index, then relocate.
            let idx = t.index_tree("by_rev_id")?;
            let mut hot_rids: Vec<(u64, RecordId)> = Vec::with_capacity(hot_ids.len());
            for id in &hot_ids {
                let ptr = idx.tree().get(&be_key(*id))?.expect("hot revision indexed");
                hot_rids.push((*id, RecordId::from_u64(ptr)));
            }
            let n = (hot_rids.len() as f64 * fraction).round() as usize;
            for (_, rid) in hot_rids.iter().take(n) {
                t.relocate(*rid)?;
            }
            let tc = Arc::clone(&t);
            lookup = Box::new(move |rev_id: u64| {
                Ok(tc.get_via_index("by_rev_id", &be_key(rev_id))?.is_some())
            });
            hot_table = Arc::clone(&t);
            main_table = t;
        }
        Fig3Variant::Partition => {
            let hot_set: std::collections::HashSet<u64> = hot_ids.iter().copied().collect();
            let hot = db.create_table("revision_hot", REVISION_ROW_WIDTH)?;
            let cold = db.create_table("revision_cold", REVISION_ROW_WIDTH)?;
            for row in &rows {
                let id = u64::from_be_bytes(row[..8].try_into().expect("8-byte key"));
                if hot_set.contains(&id) {
                    hot.insert(row)?;
                } else {
                    cold.insert(row)?;
                }
            }
            hot.create_index(rev_index())?;
            cold.create_index(rev_index())?;
            let (h, c) = (Arc::clone(&hot), Arc::clone(&cold));
            lookup = Box::new(move |rev_id: u64| {
                if h.get_via_index("by_rev_id", &be_key(rev_id))?.is_some() {
                    return Ok(true);
                }
                Ok(c.get_via_index("by_rev_id", &be_key(rev_id))?.is_some())
            });
            hot_table = hot;
            main_table = cold;
        }
    }

    // Warm-up pass over a slice of the trace, then measure.
    for rev_id in ops.iter().take(ops.len() / 10) {
        black_box(lookup(*rev_id)?);
    }
    db.reset_stats();
    let start = Instant::now();
    let mut found = 0u64;
    for rev_id in &ops {
        if lookup(*rev_id)? {
            found += 1;
        }
    }
    let cpu_ns = start.elapsed().as_nanos() as f64;
    black_box(found);
    assert!(found as usize >= ops.len() * 99 / 100, "trace lookups must resolve");

    let (heap_io, index_io) = db.io_stats();
    let io_ns = (heap_io.sim_total_ns() + index_io.sim_total_ns()) as f64;
    let n = ops.len() as f64;
    let hot_stats = hot_table.index_tree("by_rev_id")?.tree().index_stats()?;
    let main_stats = main_table.index_tree("by_rev_id")?.tree().index_stats()?;
    Ok(Fig3Result {
        label: variant.label(),
        cost_ms: (cpu_ns + io_ns) / n / 1e6,
        cpu_ms: cpu_ns / n / 1e6,
        io_ms: io_ns / n / 1e6,
        disk_reads: heap_io.reads + index_io.reads,
        heap_pages: (hot_table.heap().page_count(), main_table.heap().page_count()),
        index_leaves: (hot_stats.leaf_pages, main_stats.leaf_pages),
    })
}

/// Runs all four bars.
pub fn run_all(cfg: &Fig3Config) -> Result<Vec<Fig3Result>> {
    [
        Fig3Variant::Cluster(0.0),
        Fig3Variant::Cluster(0.54),
        Fig3Variant::Cluster(1.0),
        Fig3Variant::Partition,
    ]
    .into_iter()
    .map(|v| run_variant(cfg, v))
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Fig3Config {
        Fig3Config {
            n_pages: 300,
            revs_per_page: 10,
            lookups: 3_000,
            heap_frames: 24,
            index_frames: 8,
            disk: DiskModel { read_ns: 1_000_000, write_ns: 1_000_000 },
            seed: 7,
        }
    }

    #[test]
    fn figure3_ordering_holds_at_small_scale() {
        let cfg = tiny();
        let results = run_all(&cfg).unwrap();
        assert_eq!(results.len(), 4);
        let c0 = results[0].cost_ms;
        let c100 = results[2].cost_ms;
        let part = results[3].cost_ms;
        assert!(c100 < c0, "full clustering must beat baseline: {c100:.3} vs {c0:.3}");
        assert!(part < c100, "partition must beat clustering: {part:.3} vs {c100:.3}");
        assert!(part * 2.0 < c0, "partition should win big: {part:.3} vs {c0:.3}");
    }

    #[test]
    fn partition_shrinks_hot_index() {
        let cfg = tiny();
        let p = run_variant(&cfg, Fig3Variant::Partition).unwrap();
        let (hot_leaves, cold_leaves) = p.index_leaves;
        assert!(
            hot_leaves * 4 < cold_leaves,
            "hot index must be much smaller: {hot_leaves} vs {cold_leaves}"
        );
    }

    #[test]
    fn clustering_reduces_disk_reads() {
        let cfg = tiny();
        let base = run_variant(&cfg, Fig3Variant::Cluster(0.0)).unwrap();
        let full = run_variant(&cfg, Fig3Variant::Cluster(1.0)).unwrap();
        assert!(
            full.disk_reads < base.disk_reads,
            "clustering must cut I/O: {} vs {}",
            full.disk_reads,
            base.disk_reads
        );
    }
}
