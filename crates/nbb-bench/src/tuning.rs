//! Shifting-workload harness for the self-tuning free-space
//! controller: can one adaptive policy beat every *static* split of
//! the same spare-byte budget?
//!
//! The rig builds one table with two cached secondary indexes, `a`
//! (primary key) and `b` (an offset unique attribute), and a fixed
//! total leaf-cache byte budget `T` split between them. The workload
//! runs two phases and shifts mid-run on both axes the paper cares
//! about:
//!
//! * **projection-mix flip** — phase 1 sends 80% of projections
//!   through `a`, phase 2 sends 80% through `b`;
//! * **hot-set migration** — the keys being probed move to a disjoint
//!   range at the phase boundary.
//!
//! Policies: `a`-heavy, `b`-heavy, and even static splits (applied
//! once, never changed), versus the tuner (starts even, then
//! [`nbb_core::db::Database::tuning_tick`] runs after every chunk).
//! Each phase scores only its post-warmup chunks, so static policies
//! are measured at their steady state too — the tuner gets no scoring
//! favors, it just has to converge inside the warmup window.
//!
//! Hits are the deterministic score (same seed → same counts, no
//! wall-clock in the metric); wall-clock ops/s is also recorded for
//! the JSON artifact.

use nbb_core::db::{Database, DbConfig};
use nbb_core::table::{FieldSpec, IndexSpec};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

/// How a run spends the shared leaf-cache byte budget.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpendPolicy {
    /// 7/8 of the budget to index `a`, 1/8 to `b`, fixed.
    StaticA,
    /// 7/8 of the budget to index `b`, 1/8 to `a`, fixed.
    StaticB,
    /// Even split, fixed.
    StaticEven,
    /// Even split at start, then the controller reallocates online.
    Tuned,
}

impl SpendPolicy {
    /// Stable lowercase name for tables and JSON.
    pub fn name(self) -> &'static str {
        match self {
            SpendPolicy::StaticA => "static-a",
            SpendPolicy::StaticB => "static-b",
            SpendPolicy::StaticEven => "static-even",
            SpendPolicy::Tuned => "tuned",
        }
    }

    /// Every policy the rig compares.
    pub const ALL: [SpendPolicy; 4] =
        [SpendPolicy::StaticA, SpendPolicy::StaticB, SpendPolicy::StaticEven, SpendPolicy::Tuned];
}

/// Workload dimensions. [`TuningScale::full`] is the bench shape;
/// [`TuningScale::short`] keeps debug-mode test runs fast.
#[derive(Clone, Copy, Debug)]
pub struct TuningScale {
    /// Rows loaded before the read phases.
    pub rows: u64,
    /// Projections per chunk (the tuner ticks once per chunk).
    pub lookups_per_chunk: u64,
    /// Chunks per phase, warmup included.
    pub chunks_per_phase: usize,
    /// Leading chunks per phase excluded from scoring.
    pub warmup_chunks: usize,
    /// Total leaf-cache bytes split between the two indexes.
    pub budget_bytes: usize,
}

impl TuningScale {
    /// Bench scale: enough chunks for the controller's bounded step
    /// to cross the budget gap inside each phase's warmup.
    pub fn full() -> Self {
        TuningScale {
            rows: 3000,
            lookups_per_chunk: 3000,
            chunks_per_phase: 30,
            warmup_chunks: 22,
            // Scarce on purpose: an even split must NOT fit either
            // phase's hot projections — otherwise every policy
            // saturates and the split stops mattering.
            budget_bytes: 32 * 1024,
        }
    }

    /// Test scale: same shape, minutes → seconds in debug builds.
    pub fn short() -> Self {
        TuningScale {
            rows: 1200,
            lookups_per_chunk: 1000,
            chunks_per_phase: 18,
            warmup_chunks: 13,
            budget_bytes: 20 * 1024,
        }
    }
}

/// One phase's post-warmup score for one policy.
#[derive(Clone, Copy, Debug)]
pub struct PhaseScore {
    /// Leaf-cache hits (both indexes) during the scored chunks.
    pub hits: u64,
    /// Projections issued during the scored chunks.
    pub lookups: u64,
    /// Wall-clock time of the scored chunks.
    pub elapsed: Duration,
}

impl PhaseScore {
    /// Projections per second over the scored window.
    pub fn ops_per_s(&self) -> f64 {
        self.lookups as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }
}

/// A full two-phase run of one policy.
#[derive(Clone, Debug)]
pub struct PolicyScore {
    /// Which spend policy ran.
    pub policy: SpendPolicy,
    /// Post-warmup score per phase, in phase order.
    pub phases: Vec<PhaseScore>,
    /// The tuner's decision trace (empty for static policies).
    pub decisions: Vec<String>,
}

impl PolicyScore {
    /// Total post-warmup hits across phases.
    pub fn total_hits(&self) -> u64 {
        self.phases.iter().map(|p| p.hits).sum()
    }
}

/// Unique `b`-key for row `k`: order-preserving and offset, so both
/// indexes have the same tree shape and the experiment isolates the
/// *budget split* (not structural asymmetry between the trees).
fn b_key(k: u64) -> u64 {
    1_000_000 + k
}

/// Runs the two-phase shifting workload under one policy.
pub fn run_policy(policy: SpendPolicy, scale: &TuningScale) -> PolicyScore {
    let tuned = policy == SpendPolicy::Tuned;
    let db = Database::open(DbConfig {
        heap_frames: 256,
        index_frames: 256,
        // An hour: the background thread never fires mid-run, so the
        // controller advances only at the deterministic per-chunk
        // tuning_tick() calls below.
        tuning_interval: tuned.then(|| Duration::from_secs(3600)),
        ..DbConfig::default()
    });
    let t = db.create_table("t", 24).unwrap();
    t.create_index(IndexSpec::cached("a", FieldSpec::new(0, 8), vec![FieldSpec::new(16, 8)]))
        .unwrap();
    t.create_index(IndexSpec::cached("b", FieldSpec::new(8, 8), vec![FieldSpec::new(16, 8)]))
        .unwrap();
    for k in 0..scale.rows {
        let mut tu = Vec::with_capacity(24);
        tu.extend_from_slice(&k.to_be_bytes());
        tu.extend_from_slice(&b_key(k).to_be_bytes());
        tu.extend_from_slice(&(k * 3).to_le_bytes());
        t.insert(&tu).unwrap();
    }

    // Apply the starting split as per-leaf targets.
    let (share_a, share_b) = match policy {
        SpendPolicy::StaticA => (scale.budget_bytes * 7 / 8, scale.budget_bytes / 8),
        SpendPolicy::StaticB => (scale.budget_bytes / 8, scale.budget_bytes * 7 / 8),
        SpendPolicy::StaticEven | SpendPolicy::Tuned => {
            (scale.budget_bytes / 2, scale.budget_bytes / 2)
        }
    };
    for (name, share) in [("a", share_a), ("b", share_b)] {
        let handle = t.index_tree(name).unwrap();
        let tree = handle.tree();
        let leaves = tree.index_stats().unwrap().leaf_pages.max(1);
        tree.set_cache_space_target(Some(share / leaves));
    }

    let ia = t.index("a").unwrap();
    let ib = t.index("b").unwrap();
    let cache_hits = || {
        t.index_tree("a").unwrap().tree().cache_stats().hits
            + t.index_tree("b").unwrap().tree().cache_stats().hits
    };

    let mut rng = SmallRng::seed_from_u64(42);
    let mut phases = Vec::with_capacity(2);
    for phase in 0..2u64 {
        // Phase 1: 80% via `a`, hot keys in the low third.
        // Phase 2: 80% via `b`, hot keys migrated to the high third.
        let a_pct = if phase == 0 { 80 } else { 20 };
        let hot_base = if phase == 0 { 0 } else { scale.rows * 2 / 3 };
        let hot_span = scale.rows / 3;
        let mut hits = 0u64;
        let mut lookups = 0u64;
        let mut elapsed = Duration::ZERO;
        for chunk in 0..scale.chunks_per_phase {
            let before = cache_hits();
            let start = Instant::now();
            for _ in 0..scale.lookups_per_chunk {
                let k = hot_base + rng.gen::<u64>() % hot_span;
                if rng.gen::<u64>() % 100 < a_pct {
                    ia.project(&k.to_be_bytes()).unwrap().unwrap();
                } else {
                    ib.project(&b_key(k).to_be_bytes()).unwrap().unwrap();
                }
            }
            let took = start.elapsed();
            if tuned {
                db.tuning_tick();
            }
            if chunk >= scale.warmup_chunks {
                hits += cache_hits() - before;
                lookups += scale.lookups_per_chunk;
                elapsed += took;
            }
        }
        phases.push(PhaseScore { hits, lookups, elapsed });
    }
    PolicyScore { policy, phases, decisions: db.tuner_decisions() }
}

/// Runs every policy at `scale`.
pub fn run_all(scale: &TuningScale) -> Vec<PolicyScore> {
    SpendPolicy::ALL.iter().map(|&p| run_policy(p, scale)).collect()
}

/// The acceptance gate: the tuner must beat (or tie) the best static
/// policy on total post-warmup hits, and stay within `slack` (e.g.
/// 0.10) of each phase's winning static policy. Panics with the full
/// scoreboard on violation.
pub fn assert_tuned_beats_static(results: &[PolicyScore], slack: f64) {
    let tuned = results
        .iter()
        .find(|r| r.policy == SpendPolicy::Tuned)
        .expect("results must include the tuned policy");
    let statics: Vec<&PolicyScore> =
        results.iter().filter(|r| r.policy != SpendPolicy::Tuned).collect();
    let scoreboard = || {
        results
            .iter()
            .map(|r| {
                format!(
                    "{:>12}: total {:>8} hits, per-phase {:?}",
                    r.policy.name(),
                    r.total_hits(),
                    r.phases.iter().map(|p| p.hits).collect::<Vec<_>>()
                )
            })
            .collect::<Vec<_>>()
            .join("\n")
    };

    let best_static = statics.iter().map(|r| r.total_hits()).max().unwrap();
    assert!(
        tuned.total_hits() >= best_static,
        "tuned ({}) lost to the best static policy ({best_static}) overall\n{}",
        tuned.total_hits(),
        scoreboard()
    );
    for phase in 0..tuned.phases.len() {
        let winner = statics.iter().map(|r| r.phases[phase].hits).max().unwrap();
        let floor = (winner as f64 * (1.0 - slack)) as u64;
        assert!(
            tuned.phases[phase].hits >= floor,
            "tuned phase {} ({}) below {:.0}% of the per-phase winner ({winner})\n{}",
            phase + 1,
            tuned.phases[phase].hits,
            (1.0 - slack) * 100.0,
            scoreboard()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Debug-mode smoke of the full acceptance gate at test scale.
    /// Everything is deterministic (seeded RNG, manual ticks, no
    /// background thread), so the same slack as the bench holds.
    #[test]
    fn tuned_beats_every_static_split_at_test_scale() {
        let results = run_all(&TuningScale::short());
        assert_eq!(results.len(), SpendPolicy::ALL.len());
        let tuned = results.iter().find(|r| r.policy == SpendPolicy::Tuned).unwrap();
        assert!(!tuned.decisions.is_empty(), "the tuner must actually have moved bytes");
        assert_tuned_beats_static(&results, 0.10);
    }
}
