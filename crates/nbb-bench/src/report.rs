//! Tiny aligned-table printer for the figure binaries.

/// Prints a header line followed by aligned rows.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let head: Vec<String> =
        headers.iter().enumerate().map(|(i, h)| format!("{:>w$}", h, w = widths[i])).collect();
    println!("{}", head.join("  "));
    for row in rows {
        let line: Vec<String> =
            row.iter().enumerate().map(|(i, c)| format!("{:>w$}", c, w = widths[i])).collect();
        println!("{}", line.join("  "));
    }
}

/// Formats a float with the given precision.
pub fn f(v: f64, prec: usize) -> String {
    format!("{v:.prec$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_helper() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(f(10.0, 0), "10");
    }

    #[test]
    fn print_table_does_not_panic() {
        print_table(
            "t",
            &["a", "bb"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
    }
}
