//! The Figure 2(b)/2(c) microbenchmark harness.
//!
//! Faithful to §2.1.4: "We assume that the index is fully in memory, and
//! simulate the index and buffer pool using large in-memory arrays. An
//! index cache miss must access a random page in the buffer pool, and a
//! buffer pool miss must read a page from an on-disk file."
//!
//! The *index* side uses real `nbb-btree` leaf pages and the real cache
//! probe (so the measured overhead is the implementation's, not a
//! model's); the buffer pool is an array of real slotted pages; the
//! "disk" is a large in-memory array whose reads are charged a
//! [`DiskModel`] latency on top of an actual page copy. Hit rates are
//! controlled exactly (Bernoulli draws), as the paper's axes require.
//!
//! Each point reports measured CPU ns/lookup and simulated I/O
//! ns/lookup; their sum is the cost the figures plot.

use nbb_btree::cache::{CacheConfig, CacheView, CacheViewMut};
use nbb_btree::node::NodeMut;
use nbb_storage::buffer::BufferPool;
use nbb_storage::disk::{DiskManager, DiskModel, InMemoryDisk};
use nbb_storage::page::{Page, PageId};
use nbb_storage::slotted::{SlottedPage, SlottedPageRef};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

/// Shared configuration for the Figure 2(b)/(c) harness.
#[derive(Debug, Clone)]
pub struct CostSimConfig {
    /// Page size (bytes) for index leaves, buffer pool pages, and disk
    /// transfer units.
    pub page_size: usize,
    /// Number of real index leaf pages materialized.
    pub n_leaves: usize,
    /// Index key width (the paper's name_title key is 32 bytes).
    pub key_size: usize,
    /// Cached payload width (17 → 25-byte items with the id).
    pub payload: usize,
    /// Buffer-pool array size in pages.
    pub bp_pages: usize,
    /// Disk latency model charged on buffer-pool misses.
    pub disk: DiskModel,
    /// Lookups per measured point.
    pub lookups: usize,
}

impl Default for CostSimConfig {
    fn default() -> Self {
        CostSimConfig {
            page_size: 8192,
            n_leaves: 64,
            key_size: 32,
            payload: 17,
            bp_pages: 2048,
            disk: DiskModel::default(),
            lookups: 100_000,
        }
    }
}

/// One measured point of Figure 2(b)/(c).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostPoint {
    /// Controlled index-cache hit rate (x axis).
    pub cache_hit_rate: f64,
    /// Controlled buffer-pool hit rate (line parameter).
    pub bp_hit_rate: f64,
    /// Measured CPU nanoseconds per lookup.
    pub cpu_ns: f64,
    /// Simulated disk nanoseconds per lookup.
    pub io_ns: f64,
}

impl CostPoint {
    /// Total cost in milliseconds per lookup (the figure's y axis).
    pub fn total_ms(&self) -> f64 {
        (self.cpu_ns + self.io_ns) / 1e6
    }

    /// Total cost in microseconds per lookup (Figure 2(c)'s axis).
    pub fn total_us(&self) -> f64 {
        (self.cpu_ns + self.io_ns) / 1e3
    }
}

/// The materialized arrays behind one harness run.
pub struct CostSim {
    cfg: CostSimConfig,
    cache_cfg: CacheConfig,
    /// Real index leaves, caches fully populated.
    leaves: Vec<Page>,
    /// Ids cached per leaf (probe targets for forced hits).
    cached_ids: Vec<Vec<u64>>,
    /// Buffer pool: the real pool, fully resident slotted heap pages.
    bp_pool: Arc<BufferPool>,
    bp_ids: Vec<PageId>,
    /// "Disk": raw bytes we copy pages out of on a miss.
    disk_bytes: Vec<u8>,
    /// Scratch frame receiving disk reads.
    frame: Page,
}

impl CostSim {
    /// Builds the arrays: leaves at ~68% fill with fully-populated
    /// caches, heap pages with 100-byte tuples, and a disk image.
    pub fn build(cfg: CostSimConfig, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let cache_cfg =
            CacheConfig { payload_size: cfg.payload, bucket_slots: 8, log_threshold: 64 };
        let mut leaves = Vec::with_capacity(cfg.n_leaves);
        let mut cached_ids = Vec::with_capacity(cfg.n_leaves);
        let mut next_id = 1u64;
        for _ in 0..cfg.n_leaves {
            let mut page = Page::new(cfg.page_size);
            {
                let mut node = NodeMut::init_leaf(&mut page, cfg.key_size);
                let cap = node.as_ref().capacity();
                let fill = (cap as f64 * 0.68) as usize;
                for _ in 0..fill {
                    let mut key = vec![0u8; cfg.key_size];
                    key[..8].copy_from_slice(&next_id.to_be_bytes());
                    node.append_sorted(&key, next_id);
                    next_id += 1;
                }
            }
            // Fill the cache completely with known ids: exactly
            // `capacity` stores land in free slots (no evictions, so
            // every recorded id stays probeable).
            let capacity = CacheView::new(&page, cfg.key_size, &cache_cfg).capacity();
            let mut ids = Vec::with_capacity(capacity);
            {
                let mut cv = CacheViewMut::new(&mut page, cfg.key_size, &cache_cfg);
                let payload = vec![0xCD_u8; cfg.payload];
                for _ in 0..capacity {
                    use nbb_btree::cache::StoreOutcome;
                    let id = next_id;
                    next_id += 1;
                    match cv.store(id, &payload, &mut rng) {
                        StoreOutcome::Stored => ids.push(id),
                        StoreOutcome::StoredEvicting | StoreOutcome::NoRoom => {
                            unreachable!("free slots remain for the first `capacity` stores")
                        }
                    }
                }
            }
            assert!(!ids.is_empty(), "leaves must have cache room at 68% fill");
            leaves.push(page);
            cached_ids.push(ids);
        }
        // Buffer pool: a *real* BufferPool (page-table lookup, pin,
        // frame latch) holding slotted pages of 100-byte tuples, all
        // resident — so a "BP hit" pays exactly the machinery the index
        // cache lets queries skip ("we avoid … the memory access to the
        // buffer pool", §2.1.4).
        let bp_disk: Arc<dyn DiskManager> = Arc::new(InMemoryDisk::new(cfg.page_size));
        let bp_pool = Arc::new(BufferPool::new(bp_disk, cfg.bp_pages));
        let mut bp_ids = Vec::with_capacity(cfg.bp_pages);
        for _ in 0..cfg.bp_pages {
            let (pid, ()) = bp_pool
                .new_page_with(|p| {
                    let mut sp = SlottedPage::init(p);
                    while sp.insert(&[0xAB; 100]).is_ok() {}
                })
                .expect("in-memory pool");
            bp_ids.push(pid);
        }
        // Prefault every page into its frame.
        for pid in &bp_ids {
            bp_pool.with_page(*pid, |_| ()).expect("resident");
        }
        // Disk image: 2x the buffer pool, arbitrary bytes.
        let disk_bytes = vec![0x5A_u8; cfg.page_size * cfg.bp_pages.max(16) * 2];
        let frame = Page::new(cfg.page_size);
        CostSim { cfg, cache_cfg, leaves, cached_ids, bp_pool, bp_ids, disk_bytes, frame }
    }

    /// Touches a random buffer-pool page through the real pool: page
    /// table, pin, frame latch, slotted-page parse, tuple read.
    fn bp_touch(&self, rng: &mut SmallRng) -> u64 {
        let pid = self.bp_ids[rng.gen_range(0..self.bp_ids.len())];
        let slot_pick = rng.gen::<u64>();
        self.bp_pool
            .with_page(pid, |page| {
                let sp = SlottedPageRef::attach(page).expect("bp pages are slotted");
                let slot = (slot_pick % sp.live_count() as u64) as u16;
                let t = sp.get(slot).expect("live");
                u64::from(t[0]) + u64::from(t[t.len() - 1])
            })
            .expect("resident page")
    }

    /// Copies a random page from the disk image into the frame (the
    /// bandwidth cost of a read; latency is charged separately).
    fn disk_read(&mut self, rng: &mut SmallRng) {
        let pages = self.disk_bytes.len() / self.cfg.page_size;
        let off = rng.gen_range(0..pages) * self.cfg.page_size;
        self.frame.bytes_mut().copy_from_slice(&self.disk_bytes[off..off + self.cfg.page_size]);
    }

    /// Runs one point with exact hit-rate control.
    ///
    /// `use_cache = false` gives Figure 2(c)'s `nocache` baseline (no
    /// probe, straight to the buffer pool).
    pub fn run_point(
        &mut self,
        cache_hit: f64,
        bp_hit: f64,
        use_cache: bool,
        seed: u64,
    ) -> CostPoint {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut io_events = 0u64;
        let mut sink = 0u64;
        let start = Instant::now();
        for _ in 0..self.cfg.lookups {
            let leaf_i = rng.gen_range(0..self.leaves.len());
            if use_cache {
                let force_hit = rng.gen_bool(cache_hit);
                let probe_id = if force_hit {
                    let ids = &self.cached_ids[leaf_i];
                    ids[rng.gen_range(0..ids.len())]
                } else {
                    u64::MAX - 1 // never cached: full scan, then miss path
                };
                let view = CacheView::new(&self.leaves[leaf_i], self.cfg.key_size, &self.cache_cfg);
                match view.probe(probe_id) {
                    Some((_, payload)) => {
                        sink += u64::from(payload[0]);
                        continue; // answered from the index page
                    }
                    None => debug_assert!(!force_hit, "forced hit must probe successfully"),
                }
            }
            // Cache miss (or nocache): go to the buffer pool.
            if rng.gen_bool(bp_hit) {
                sink += self.bp_touch(&mut rng);
            } else {
                self.disk_read(&mut rng);
                io_events += 1;
                sink += u64::from(self.frame.bytes()[0]);
            }
        }
        let elapsed = start.elapsed().as_nanos() as f64;
        black_box(sink);
        CostPoint {
            cache_hit_rate: cache_hit,
            bp_hit_rate: bp_hit,
            cpu_ns: elapsed / self.cfg.lookups as f64,
            io_ns: io_events as f64 * self.cfg.disk.read_ns as f64 / self.cfg.lookups as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> CostSimConfig {
        CostSimConfig {
            n_leaves: 8,
            bp_pages: 64,
            lookups: 20_000,
            disk: DiskModel { read_ns: 10_000_000, write_ns: 10_000_000 },
            ..Default::default()
        }
    }

    #[test]
    fn forced_hits_actually_hit() {
        let mut sim = CostSim::build(small_cfg(), 1);
        let p = sim.run_point(1.0, 1.0, true, 2);
        assert_eq!(p.io_ns, 0.0, "100% cache hits never reach the disk");
        assert!(p.cpu_ns > 0.0);
    }

    #[test]
    fn io_cost_scales_with_miss_rates() {
        let mut sim = CostSim::build(small_cfg(), 3);
        let all_miss = sim.run_point(0.0, 0.0, true, 4);
        let half_bp = sim.run_point(0.0, 0.5, true, 4);
        let all_bp = sim.run_point(0.0, 1.0, true, 4);
        // 0% bp hits: every lookup pays one disk read (10 ms).
        assert!((all_miss.io_ns - 1e7).abs() < 1e6, "io {:.0}", all_miss.io_ns);
        assert!(half_bp.io_ns < all_miss.io_ns);
        assert_eq!(all_bp.io_ns, 0.0);
    }

    #[test]
    fn cache_hits_cheaper_than_bp_access() {
        // The 2.7x claim of Figure 2(c): an index-cache answer beats the
        // buffer-pool path even when the pool always hits. Relative
        // wall-clock costs only mean anything in optimized builds, so
        // the strict comparison is release-only; debug checks the paths.
        let mut sim = CostSim::build(small_cfg(), 5);
        let cached = sim.run_point(1.0, 1.0, true, 6);
        let nocache = sim.run_point(0.0, 1.0, false, 6);
        assert!(cached.cpu_ns > 0.0 && nocache.cpu_ns > 0.0);
        #[cfg(not(debug_assertions))]
        assert!(
            cached.cpu_ns < nocache.cpu_ns,
            "cache hit {:.0}ns should beat bp access {:.0}ns",
            cached.cpu_ns,
            nocache.cpu_ns
        );
    }

    #[test]
    fn total_units_consistent() {
        let p = CostPoint { cache_hit_rate: 0.0, bp_hit_rate: 0.0, cpu_ns: 500.0, io_ns: 9_500.0 };
        assert!((p.total_ms() - 0.01).abs() < 1e-12);
        assert!((p.total_us() - 10.0).abs() < 1e-12);
    }
}
