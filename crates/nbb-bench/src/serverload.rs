//! Shared harness for the end-to-end server throughput experiments:
//! M pipelined connections × depth-K `get_many` requests over loopback
//! TCP against a [`LatencyDisk`]-backed database, so the measured
//! speedup is *fault overlap across the worker pool* — pipelining lets
//! K requests' disk waits run concurrently where depth-1 pays them
//! serially — not CPU noise.
//!
//! Used by `benches/server_throughput.rs` (quick comparison) and
//! `src/bin/server_throughput.rs` (the self-asserting CI artifact that
//! writes `BENCH_server.json`).

use nbb_client::{Client, ClientConfig};
use nbb_core::db::{Database, DbConfig};
use nbb_core::table::{FieldSpec, IndexSpec};
use nbb_proto::{RequestOp, ResponseBody, WireServerStats};
use nbb_server::{Server, ServerConfig};
use nbb_storage::{DiskManager, DiskModel, InMemoryDisk, LatencyDisk};
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Latency charged per heap-disk round trip (one charge per batch, the
/// way a real device amortizes a queue of requests).
pub const READ_NS: u64 = 150_000;
const PAGE_SIZE: usize = 4096;
const TUPLE_WIDTH: usize = 24;
/// Small relative to the table's page count (~22% resident at the
/// default row count): most `get_many` requests must fault, so request
/// latency is dominated by the modeled device and pipelining has real
/// waits to overlap. Not *too* small — a worker pins up to
/// `keys_per_op` frames mid-batch, and 8 workers' pins must all fit.
const HEAP_FRAMES: usize = 64;

/// One workload configuration.
#[derive(Debug, Clone, Copy)]
pub struct LoadSpec {
    /// Rows loaded into the table.
    pub rows: u64,
    /// Concurrent client connections.
    pub conns: usize,
    /// Pipelining depth per connection (1 = strict request/response).
    pub depth: usize,
    /// `get_many` requests each connection issues.
    pub ops_per_conn: usize,
    /// Keys per `get_many` request.
    pub keys_per_op: usize,
    /// Server worker threads.
    pub workers: usize,
}

/// One measured run.
#[derive(Debug, Clone, Copy)]
pub struct LoadRun {
    /// The spec that produced this run.
    pub spec: LoadSpec,
    /// Total requests completed (conns × ops_per_conn).
    pub requests: u64,
    /// Total rows found across all responses.
    pub rows_found: u64,
    /// Wall time for the whole fleet.
    pub elapsed: Duration,
    /// Server counters at the end of the run.
    pub stats: WireServerStats,
}

impl LoadRun {
    /// Completed requests per second across the fleet.
    pub fn requests_per_s(&self) -> f64 {
        self.requests as f64 / self.elapsed.as_secs_f64()
    }

    /// Rows served per second across the fleet.
    pub fn rows_per_s(&self) -> f64 {
        self.rows_found as f64 / self.elapsed.as_secs_f64()
    }
}

/// 24-byte tuple: key(8) | value(8) | filler(8).
fn tuple(key: u64, value: u64) -> Vec<u8> {
    let mut t = Vec::with_capacity(TUPLE_WIDTH);
    t.extend_from_slice(&key.to_be_bytes());
    t.extend_from_slice(&value.to_le_bytes());
    t.extend_from_slice(&[0u8; 8]);
    t
}

/// Deterministic per-connection key stream (xorshift64*): every thread
/// draws a distinct, repeatable sequence with no shared RNG lock.
struct KeyStream {
    state: u64,
    rows: u64,
}

impl KeyStream {
    fn new(seed: u64, rows: u64) -> Self {
        KeyStream { state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1, rows }
    }

    fn next_key(&mut self) -> Vec<u8> {
        self.state ^= self.state << 13;
        self.state ^= self.state >> 7;
        self.state ^= self.state << 17;
        let k = self.state.wrapping_mul(0x2545_F491_4F6C_DD1D) % self.rows;
        k.to_be_bytes().to_vec()
    }
}

/// Builds a fresh latency-backed database with `rows` rows in table
/// `t` (u64 big-endian primary key at offset 0), starts a server over
/// it, and runs the full fleet to completion.
///
/// Self-asserting: every response must carry exactly `keys_per_op`
/// results and every key must be found (all keys are in range), so a
/// wrong answer fails the run rather than skewing the number.
pub fn run(spec: LoadSpec) -> LoadRun {
    // Heap rides the latency model; the index disk is free so the
    // measured wait is heap faults, which is what get_many amortizes.
    let model = DiskModel { read_ns: READ_NS, write_ns: 0 };
    let heap = Arc::new(LatencyDisk::new(PAGE_SIZE, model));
    let index: Arc<dyn DiskManager> = Arc::new(InMemoryDisk::new(PAGE_SIZE));
    let config = DbConfig { page_size: PAGE_SIZE, heap_frames: HEAP_FRAMES, ..DbConfig::default() };
    let db = Arc::new(
        Database::with_disks(config, Arc::clone(&heap) as Arc<dyn DiskManager>, index)
            .expect("fresh disks attach"),
    );
    let t = db.create_table("t", TUPLE_WIDTH).expect("create table");
    t.create_index(IndexSpec::cached("pk", FieldSpec::new(0, 8), vec![FieldSpec::new(8, 8)]))
        .expect("create index");
    let load: Vec<Vec<u8>> = (0..spec.rows).map(|k| tuple(k, k.wrapping_mul(3))).collect();
    t.insert_many(&load).expect("load rows");
    // Writes go through the pool too: flush so the measured phase
    // starts from a clean, read-only steady state.
    db.heap_pool().flush_all().expect("flush heap");

    let server = Server::start(
        Arc::clone(&db),
        ServerConfig { workers: spec.workers, ..ServerConfig::default() },
    )
    .expect("server start");
    let addr = server.local_addr();

    let start = Instant::now();
    let threads: Vec<_> = (0..spec.conns)
        .map(|c| {
            std::thread::spawn(move || {
                let client = Client::connect(
                    addr,
                    ClientConfig { depth: spec.depth, ..ClientConfig::default() },
                )
                .expect("client connect");
                let mut keys = KeyStream::new(c as u64 + 1, spec.rows);
                let mut window: VecDeque<nbb_client::Ticket> = VecDeque::new();
                let mut rows_found = 0u64;
                let redeem = |ticket, window_len: usize| -> u64 {
                    let body = client.redeem(ticket).expect("response");
                    match body {
                        ResponseBody::GetMany { rows } => {
                            assert_eq!(
                                rows.len(),
                                spec.keys_per_op,
                                "response must answer every key"
                            );
                            let found = rows.iter().filter(|r| r.is_some()).count() as u64;
                            assert_eq!(
                                found, spec.keys_per_op as u64,
                                "all keys are in range and must be found (window {window_len})"
                            );
                            found
                        }
                        other => panic!("expected get_many body, got {other:?}"),
                    }
                };
                for _ in 0..spec.ops_per_conn {
                    let op = RequestOp::GetMany {
                        table: "t".into(),
                        index: "pk".into(),
                        keys: (0..spec.keys_per_op).map(|_| keys.next_key()).collect(),
                    };
                    let ticket = client.submit(op).expect("submit");
                    window.push_back(ticket);
                    // Keep `depth` requests in flight; redeem the oldest
                    // once the window is full.
                    if window.len() >= spec.depth {
                        let oldest = window.pop_front().expect("non-empty window");
                        rows_found += redeem(oldest, window.len());
                    }
                }
                while let Some(ticket) = window.pop_front() {
                    rows_found += redeem(ticket, window.len());
                }
                rows_found
            })
        })
        .collect();

    let mut rows_found = 0u64;
    for th in threads {
        rows_found += th.join().expect("client thread");
    }
    let elapsed = start.elapsed();
    let stats = server.stats();
    server.shutdown();

    let requests = (spec.conns * spec.ops_per_conn) as u64;
    assert_eq!(
        rows_found,
        requests * spec.keys_per_op as u64,
        "every key of every request must be served"
    );
    assert_eq!(stats.decode_errors, 0, "clean protocol run");
    LoadRun { spec, requests, rows_found, elapsed, stats }
}

/// Renders runs as the `BENCH_server.json` body. Hand-rolled (the
/// workspace has no serde): stable key order, numbers only.
pub fn server_json(scale_name: &str, runs: &[LoadRun], ratio: f64) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"benchmark\": \"server_throughput\",");
    let _ = writeln!(out, "  \"scale\": \"{scale_name}\",");
    let _ = writeln!(
        out,
        "  \"workload\": {{\"read_ns\": {READ_NS}, \"page_size\": {PAGE_SIZE}, \
         \"heap_frames\": {HEAP_FRAMES}}},"
    );
    let _ = writeln!(out, "  \"pipelining_speedup\": {ratio:.3},");
    out.push_str("  \"runs\": [\n");
    for (i, r) in runs.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"conns\": {}, \"depth\": {}, \"workers\": {}, \"keys_per_op\": {}, \
             \"requests\": {}, \"requests_per_s\": {:.1}, \"rows_per_s\": {:.1}, \
             \"elapsed_ms\": {:.3}, \"frames_in\": {}, \"frames_out\": {}, \
             \"bytes_in\": {}, \"bytes_out\": {}, \"queue_full_parks\": {}}}{}",
            r.spec.conns,
            r.spec.depth,
            r.spec.workers,
            r.spec.keys_per_op,
            r.requests,
            r.requests_per_s(),
            r.rows_per_s(),
            r.elapsed.as_secs_f64() * 1e3,
            r.stats.frames_in,
            r.stats.frames_out,
            r.stats.bytes_in,
            r.stats.bytes_out,
            r.stats.queue_full_parks,
            if i + 1 < runs.len() { "," } else { "" }
        );
    }
    out.push_str("  ]\n}\n");
    out
}
