//! §4.2 semantic IDs: embedding a tuple's partition in its surrogate
//! key, so distributed routing needs no routing table.
//!
//! ```sh
//! cargo run --release --example semantic_routing
//! ```
//!
//! Compares routing-table lookups against bit-shift routing for a
//! Schism-style partitioned workload, reports the routing table's
//! memory footprint (the scalability bottleneck §4.2 identifies), and
//! shows re-homing: moving a tuple hot→cold by rewriting its id.

use nbb::encoding::{RoutingTable, SemanticIdAllocator, SemanticIdLayout};
use std::time::Instant;

fn main() {
    let partitions = 16u32;
    let tuples_per_partition = 200_000u64;
    let layout = SemanticIdLayout::new(8); // up to 256 partitions
    let mut alloc = SemanticIdAllocator::new(layout, partitions);

    // Baseline: explicit routing table (id -> partition).
    let mut table = RoutingTable::new();
    let mut ids = Vec::new();
    for p in 0..partitions {
        for _ in 0..tuples_per_partition {
            let id = alloc.allocate(p);
            table.insert(id, p);
            ids.push(id);
        }
    }
    println!("{} tuples across {} partitions", ids.len(), partitions);
    println!(
        "routing table: {} entries, ~{:.1} MB resident",
        table.len(),
        table.approx_bytes() as f64 / 1e6
    );
    println!("semantic ids : 0 bytes of routing state");

    // Route every id both ways; results must agree.
    let start = Instant::now();
    let mut acc = 0u64;
    for id in &ids {
        acc = acc.wrapping_add(u64::from(table.route(*id).expect("routed")));
    }
    let table_time = start.elapsed();
    let start = Instant::now();
    let mut acc2 = 0u64;
    for id in &ids {
        acc2 = acc2.wrapping_add(u64::from(layout.partition_of(*id)));
    }
    let shift_time = start.elapsed();
    assert_eq!(acc, acc2, "both mechanisms must agree");
    println!(
        "routing {} ids: table {:?} vs semantic {:?} ({:.1}x faster)",
        ids.len(),
        table_time,
        shift_time,
        table_time.as_nanos() as f64 / shift_time.as_nanos().max(1) as f64
    );

    // Re-homing: the §3.1 connection — moving a tuple is an id update.
    let id = ids[0];
    let moved = layout.rehome(id, 9);
    println!(
        "\nrehome: id {:#018x} (partition {}) -> {:#018x} (partition {}), sequence preserved: {}",
        id,
        layout.partition_of(id),
        moved,
        layout.partition_of(moved),
        layout.seq_of(id) == layout.seq_of(moved)
    );
    assert_eq!(layout.partition_of(moved), 9);
    println!("\ndone: uniqueness preserved, placement embedded, no routing table.");
}
