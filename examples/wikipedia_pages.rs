//! The paper's motivating workload (§2.1.4): Wikipedia page lookups
//! through the `name_title` index, answered from the index cache.
//!
//! ```sh
//! cargo run --release --example wikipedia_pages
//! ```
//!
//! Builds a synthetic page table keyed on (namespace, title), runs a
//! zipfian lookup trace with occasional page updates, and reports the
//! cache hit rate and how many heap fetches the cache avoided — "over
//! 40% of Wikipedia queries can be directly answered through an index
//! cache on 4 attributes".

use nbb::core::db::{Database, DbConfig};
use nbb::core::table::{FieldSpec, IndexSpec};
use nbb::workload::{page_lookup_trace, TraceOp, WikiGenerator, PAGE_ROW_WIDTH, TITLE_WIDTH};

/// name_title key: namespace (u32 BE) + fixed-width title = 32 bytes.
/// In the stored tuple, namespace is LE at offset 8; we index a
/// *derived* 32-byte prefix written at tuple build time instead:
/// [ns BE (4) | title (28)] lives at offset 8..40 after rearrangement.
fn build_tuple(row: &nbb::workload::PageRow) -> Vec<u8> {
    // Rearranged layout: id(8) | ns_be(4) | title(28) | cached fields(17) | rest
    let mut t = Vec::with_capacity(PAGE_ROW_WIDTH);
    t.extend_from_slice(&row.id.to_le_bytes());
    t.extend_from_slice(&row.namespace.to_be_bytes());
    let mut title = [0u8; TITLE_WIDTH];
    let tb = row.title.as_bytes();
    title[..tb.len().min(TITLE_WIDTH)].copy_from_slice(&tb[..tb.len().min(TITLE_WIDTH)]);
    t.extend_from_slice(&title);
    t.extend_from_slice(&row.cache_payload()); // latest_rev(8) | len(8) | is_redirect(1)
    t.resize(PAGE_ROW_WIDTH, 0);
    t
}

fn key_of(namespace: u32, title: &str) -> Vec<u8> {
    let mut k = Vec::with_capacity(32);
    k.extend_from_slice(&namespace.to_be_bytes());
    let mut t = [0u8; TITLE_WIDTH];
    let tb = title.as_bytes();
    t[..tb.len().min(TITLE_WIDTH)].copy_from_slice(&tb[..tb.len().min(TITLE_WIDTH)]);
    k.extend_from_slice(&t);
    k
}

fn main() {
    let db = Database::open(DbConfig::default());
    let pages_table = db.create_table("page", PAGE_ROW_WIDTH).expect("create table");
    // The paper's setup: 32-byte composite key, 4 projected fields
    // cached (17 bytes -> 25-byte cache items).
    pages_table
        .create_index(IndexSpec::cached(
            "name_title",
            FieldSpec::new(8, 32),
            vec![FieldSpec::new(40, 17)],
        ))
        .expect("create index");

    let mut gen = WikiGenerator::new(2011);
    let mut rows = gen.pages(10_000);
    gen.revisions(&mut rows, 3);
    for row in &rows {
        pages_table.insert(&build_tuple(row)).expect("insert");
    }

    // 200k zipfian lookups with 0.1% updates — the paper's read-heavy
    // page workload. Every update invalidates (zeroes) the whole leaf
    // cache it lands on (§2.1.2), so update rate matters a lot: at 1%
    // updates the steady-state hit rate drops to ~20%.
    let trace = page_lookup_trace(&rows, 200_000, 0.5, 0.001, 7);
    let mut update_count = 0u64;
    for op in &trace {
        match op {
            TraceOp::PageLookup { namespace, title } => {
                let key = key_of(*namespace, title);
                let p = pages_table
                    .project_via_index("name_title", &key)
                    .expect("query")
                    .expect("page exists");
                // 17-byte payload: latest_rev | len | is_redirect
                debug_assert_eq!(p.payload.len(), 17);
            }
            TraceOp::PageTouch { namespace, title } => {
                let key = key_of(*namespace, title);
                if let Some(old) = pages_table.get_via_index("name_title", &key).expect("get") {
                    let mut new = old.clone();
                    // Bump page_len (inside the cached payload -> invalidation).
                    let len = u64::from_le_bytes(new[48..56].try_into().unwrap());
                    new[48..56].copy_from_slice(&(len + 1).to_le_bytes());
                    pages_table.update_via_index("name_title", &key, &new).expect("update");
                    update_count += 1;
                }
            }
            TraceOp::RevisionLookup { .. } => unreachable!(),
        }
    }

    let ts = pages_table.stats();
    let cs = pages_table.index_tree("name_title").unwrap().tree().cache_stats();
    let is = pages_table.index_tree("name_title").unwrap().tree().index_stats().unwrap();
    println!("trace: {} ops ({} updates)", trace.len(), update_count);
    println!(
        "index cache: {:.1}% hit rate ({} hits / {} cached lookups)",
        cs.hit_rate() * 100.0,
        cs.hits,
        cs.lookups
    );
    println!(
        "heap fetches avoided: {} of {} point queries answered index-only",
        ts.index_only_answers,
        ts.index_only_answers + ts.heap_fetches
    );
    println!(
        "cache occupancy: {}/{} slots across {} leaves ({:.0}% fill factor)",
        is.cache_occupied,
        is.cache_slots,
        is.leaf_pages,
        is.avg_fill() * 100.0
    );
    println!(
        "consistency: {} predicate zeroings, {} stale-skips, {} full invalidations prevented stale reads",
        cs.zeroings, cs.stale_skips, 0
    );
    // Bound context: with ~N cache slots over 10k pages under zipf(0.5),
    // the best possible hit rate is the top-mass of the cached fraction
    // (≈ sqrt(slots/pages)); the swap policy should get most of it.
    assert!(cs.hit_rate() > 0.35, "zipfian trace should hit the cache often: {cs:?}");
}
