//! The §3.1 scenario: Wikipedia's revision table, where 99.9% of
//! lookups touch the ~5% of tuples that are each page's latest revision.
//!
//! ```sh
//! cargo run --release --example hot_cold_revisions
//! ```
//!
//! Demonstrates the full Figure 3 progression on one database: measure
//! the scattered baseline, cluster the hot tuples, then split them into
//! a hot partition — and watch the simulated I/O cost fall. Also shows
//! the ongoing §3.1 policy: a new revision replaces its page's previous
//! latest revision, which migrates to the cold partition.

use nbb::partition::{HotColdStore, SetPolicy, Temperature};
use nbb::storage::{BufferPool, DiskManager, DiskModel, HeapFile, SimulatedDisk};
use nbb::workload::WikiGenerator;
use std::collections::HashMap;
use std::sync::Arc;

fn sim_heap(frames: usize) -> (HeapFile, Arc<dyn DiskManager>) {
    let disk: Arc<dyn DiskManager> = Arc::new(SimulatedDisk::new(8192, DiskModel::default()));
    let pool = Arc::new(BufferPool::new(Arc::clone(&disk), frames));
    (HeapFile::create(pool).expect("heap"), disk)
}

fn main() {
    let mut gen = WikiGenerator::new(42);
    let mut pages = gen.pages(1_000);
    let revisions = gen.revisions(&mut pages, 20);
    let hot_ids: std::collections::HashSet<u64> = pages.iter().map(|p| p.latest_rev).collect();
    println!(
        "revision table: {} rows, hot set = {} latest revisions ({:.1}%)",
        revisions.len(),
        hot_ids.len(),
        hot_ids.len() as f64 * 100.0 / revisions.len() as f64
    );

    // ---- baseline: append order, hot tuples scattered ----------------
    let (heap, disk) = sim_heap(16);
    let mut rid_of = HashMap::new();
    for r in &revisions {
        rid_of.insert(r.id, heap.insert(&r.encode()).expect("insert"));
    }
    let hot_rids: Vec<_> = pages.iter().map(|p| rid_of[&p.latest_rev]).collect();
    let hot_pages: std::collections::HashSet<_> = hot_rids.iter().map(|r| r.page).collect();
    println!(
        "\nbaseline: hot tuples spread over {} of {} heap pages",
        hot_pages.len(),
        heap.page_count()
    );
    disk.reset_stats();
    for rid in &hot_rids {
        heap.get(*rid).expect("read");
    }
    let base_reads = disk.stats().reads;
    println!("one sweep over the hot set: {base_reads} disk reads");

    // ---- clustered: relocate hot tuples to the tail -------------------
    let mut new_rids = Vec::new();
    for rid in &hot_rids {
        new_rids.push(heap.relocate(*rid).expect("relocate"));
    }
    let clustered_pages: std::collections::HashSet<_> = new_rids.iter().map(|r| r.page).collect();
    disk.reset_stats();
    for rid in &new_rids {
        heap.get(*rid).expect("read");
    }
    println!(
        "\nclustered: hot tuples now on {} pages; same sweep: {} disk reads ({:.1}x fewer)",
        clustered_pages.len(),
        disk.stats().reads,
        base_reads as f64 / disk.stats().reads.max(1) as f64
    );

    // ---- partitioned: hot tuples in their own heap --------------------
    let (hot_heap, hot_disk) = sim_heap(16);
    let (cold_heap, _cold_disk) = sim_heap(16);
    let store = HotColdStore::new(hot_heap, cold_heap);
    let mut policy = SetPolicy::new(hot_ids.iter().copied());
    let mut loc_of = HashMap::new();
    for r in &revisions {
        let temp = if policy.is_hot_key(r.id) { Temperature::Hot } else { Temperature::Cold };
        loc_of.insert(r.id, store.insert(temp, &r.encode()).expect("insert"));
    }
    let (hp, cp) = store.page_counts();
    println!("\npartitioned: hot heap {hp} pages, cold heap {cp} pages");
    hot_disk.reset_stats();
    for p in &pages {
        store.get(loc_of[&p.latest_rev]).expect("read hot");
    }
    println!(
        "same sweep against the hot partition: {} disk reads ({:.1}x fewer than baseline)",
        hot_disk.stats().reads,
        base_reads as f64 / hot_disk.stats().reads.max(1) as f64
    );

    // ---- the ongoing policy: new revision demotes the old one ---------
    let page0 = &pages[0];
    let old_latest = page0.latest_rev;
    let new_rev_id = revisions.len() as u64 + 1;
    println!("\npolicy: page {} gets revision {new_rev_id}", page0.id);
    // Insert the new latest hot, demote the superseded one to cold.
    let mut new_rev = revisions.iter().find(|r| r.id == old_latest).unwrap().clone();
    new_rev.id = new_rev_id;
    new_rev.parent_id = old_latest;
    let new_loc = store.insert(Temperature::Hot, &new_rev.encode()).expect("insert new");
    let demoted = store.migrate(loc_of[&old_latest]).expect("demote");
    loc_of.insert(new_rev_id, new_loc);
    loc_of.insert(old_latest, demoted);
    policy.replace(old_latest, new_rev_id);
    println!("revision {old_latest} migrated to {:?}; revision {new_rev_id} is hot", demoted.temp);
    assert_eq!(demoted.temp, Temperature::Cold);
    assert!(policy.is_hot_key(new_rev_id) && !policy.is_hot_key(old_latest));
    println!("\ndone: locality waste measured, clustered away, and kept away by policy.");
}

/// Local extension trait shim: `SetPolicy::is_hot` comes from the
/// `HotPolicy` trait; alias it for readability in this example.
trait IsHotKey {
    fn is_hot_key(&self, key: u64) -> bool;
}

impl IsHotKey for SetPolicy {
    fn is_hot_key(&self, key: u64) -> bool {
        use nbb::partition::HotPolicy;
        self.is_hot(key)
    }
}
