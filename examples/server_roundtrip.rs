//! Network front door in one file: an `nbb-server` on an ephemeral
//! loopback port, an `nbb-client` pipelining work into it, and the
//! server's counters read back over the wire.
//!
//! ```sh
//! cargo run --release --example server_roundtrip
//! ```
//!
//! The wire protocol is deliberately boring — length-prefixed binary
//! frames over TCP (see `examples/quickstart.rs` §6 for the byte
//! layout) — because the interesting part is *when* frames fly, not
//! what's in them. Every request carries a client-chosen `request_id`
//! and responses echo it, so a connection can keep many requests in
//! flight and the server may complete them out of order: a request
//! whose pages are resident overtakes one stuck behind a device read.
//! `Client::submit` returns a [`Ticket`] immediately; `Client::redeem`
//! redeems it whenever the caller is ready. The typed helpers
//! (`insert_many`, `get_many`, `range`, `stats`) are just
//! submit-then-wait pairs for when strict request/response is fine.
//!
//! Server-side, a fixed worker pool executes every request through the
//! engine's *batched* fast paths (`get_many`, `insert_many`, ...), so
//! one frame's worth of keys pays one index descent and one batched
//! heap read — the wire twin of the paper's no-bits-left-behind
//! batching. Per-connection response queues are bounded; a connection
//! that stops draining parks its reader (`queue_full_parks` meters
//! this) instead of growing the heap.

use nbb::core::db::{Database, DbConfig};
use nbb::core::table::{FieldSpec, IndexSpec};
use nbb_client::{Client, ClientConfig, Ticket};
use nbb_proto::WireBound;
use nbb_server::{Server, ServerConfig};
use std::collections::VecDeque;
use std::sync::Arc;

/// 24-byte tuple: key(8, big-endian so byte order = numeric order) |
/// value(8) | filler(8).
fn tuple(key: u64, value: u64) -> Vec<u8> {
    let mut t = Vec::with_capacity(24);
    t.extend_from_slice(&key.to_be_bytes());
    t.extend_from_slice(&value.to_le_bytes());
    t.extend_from_slice(&[0u8; 8]);
    t
}

fn main() {
    // --- 1. a database and a server on an ephemeral port --------------
    let db = Arc::new(Database::open(DbConfig::default()));
    let t = db.create_table("events", 24).expect("create table");
    t.create_index(IndexSpec::cached("pk", FieldSpec::new(0, 8), vec![FieldSpec::new(8, 8)]))
        .expect("create index");
    drop(t); // the server holds the Database; handles resolve per request

    // Port 0: the OS picks a free port, `local_addr` reports it. The
    // server is fully shared-nothing with this thread from here on.
    let server = Server::start(Arc::clone(&db), ServerConfig::default()).expect("bind loopback");
    let addr = server.local_addr();
    println!("server listening on {addr}");

    // --- 2. pipelined inserts ------------------------------------------
    // Eight insert_many frames go out back to back; the worker pool
    // lands them concurrently while we keep submitting. Depth is the
    // client-side cap on in-flight requests — submit parks at the cap,
    // so a runaway producer can't balloon the pending map.
    let client = Client::connect(addr, ClientConfig { depth: 8, ..ClientConfig::default() })
        .expect("connect");
    let batches: Vec<Vec<Vec<u8>>> = (0..8u64)
        .map(|b| (0..100u64).map(|i| tuple(b * 100 + i, b * 100 + i + 7)).collect())
        .collect();
    let mut window: VecDeque<Ticket> = VecDeque::new();
    for batch in batches {
        window.push_back(
            client
                .submit(nbb_proto::RequestOp::InsertMany { table: "events".into(), tuples: batch })
                .expect("submit"),
        );
    }
    let mut inserted = 0usize;
    while let Some(ticket) = window.pop_front() {
        match client.redeem(ticket).expect("insert response") {
            nbb_proto::ResponseBody::InsertMany { rids } => inserted += rids.len(),
            other => panic!("expected insert_many body, got {other:?}"),
        }
    }
    println!("pipelined 8 insert_many frames: {inserted} rows landed");
    assert_eq!(inserted, 800);

    // --- 3. reads: batched lookups and a paged range scan --------------
    let keys: Vec<Vec<u8>> =
        [5u64, 250, 799, 800].iter().map(|k| k.to_be_bytes().to_vec()).collect();
    let rows = client.get_many("events", "pk", keys).expect("get_many");
    assert!(rows[0].is_some() && rows[1].is_some() && rows[2].is_some());
    assert!(rows[3].is_none(), "key 800 was never inserted");
    println!("get_many: 3 of 4 keys found (key 800 is correctly absent)");

    // The server caps each Range response at `limit` rows and returns a
    // resume key, so a full scan is a loop of bounded frames — no
    // response is ever larger than the client asked for.
    let mut lo = WireBound::Unbounded;
    let (mut pages, mut scanned) = (0usize, 0usize);
    loop {
        let (rows, more, resume) =
            client.range("events", "pk", lo.clone(), WireBound::Unbounded, 128).expect("range");
        scanned += rows.len();
        pages += 1;
        if !more {
            break;
        }
        lo = WireBound::Excluded(resume.expect("a truncated page names its resume key"));
    }
    println!("range scan: {scanned} rows over {pages} bounded pages");
    assert_eq!(scanned, 800);

    // --- 4. the server's own counters, over the wire --------------------
    let s = client.stats().expect("stats");
    println!(
        "server stats: {} frames in / {} out, {} batches executed, \
         {} connections opened, {} decode errors",
        s.frames_in, s.frames_out, s.batches_executed, s.connections_opened, s.decode_errors
    );
    assert_eq!(s.decode_errors, 0);
    drop(client);
    server.shutdown();
    println!("done: clean shutdown with all responses drained.");
}
