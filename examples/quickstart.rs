//! Quickstart: the three waste classes in five minutes.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a small table, shows (1) the index cache answering projection
//! queries from B+Tree free space, (2) a locality audit before and after
//! hot/cold clustering, and (3) the schema advisor finding encoding
//! waste — all through the public `nbb` API.

use nbb::core::db::{Database, DbConfig};
use nbb::core::table::{FieldSpec, IndexSpec};
use nbb::core::waste;
use nbb::encoding::{ColumnDef, DeclaredType, Schema, Value};

fn main() {
    // A table of 32-byte tuples: id(8) | views(8) | flags(8) | pad(8).
    let db = Database::open(DbConfig::default());
    let t = db.create_table("articles", 32).expect("create table");
    t.create_index(IndexSpec::cached(
        "by_id",
        FieldSpec::new(0, 8),
        vec![FieldSpec::new(8, 8)], // cache the `views` field
    ))
    .expect("create index");

    for i in 0..10_000u64 {
        let mut tuple = Vec::with_capacity(32);
        tuple.extend_from_slice(&i.to_be_bytes());
        tuple.extend_from_slice(&(i % 100).to_le_bytes()); // views: small range!
        tuple.extend_from_slice(&1u64.to_le_bytes()); // flags: constant!
        tuple.extend_from_slice(&[0u8; 8]);
        t.insert(&tuple).expect("insert");
    }

    // --- Waste class 1: unused space, recycled as an index cache -----
    println!("--- 1. index caching (unused space, paper §2) ---");
    let key = 4242u64.to_be_bytes();
    let first = t.project_via_index("by_id", &key).expect("query").expect("found");
    let second = t.project_via_index("by_id", &key).expect("query").expect("found");
    println!("first access : index_only = {} (heap fetch, cache populated)", first.index_only);
    println!("second access: index_only = {} (answered from leaf free space)", second.index_only);
    assert!(!first.index_only && second.index_only);

    let stats = t.index_tree("by_id").unwrap().tree().index_stats().unwrap();
    println!(
        "index: {} leaves at {:.0}% fill, {} free bytes -> {} cache slots ({} used)",
        stats.leaf_pages,
        stats.avg_fill() * 100.0,
        stats.free_bytes,
        stats.cache_slots,
        stats.cache_occupied
    );

    // --- Waste class 2: locality ------------------------------------
    println!("\n--- 2. locality audit (paper §3) ---");
    let mut all = Vec::new();
    t.scan(|rid, _| all.push(rid)).unwrap();
    let hot: Vec<_> = all.iter().copied().step_by(200).collect(); // scattered hot set
    let before = waste::audit_locality(&t, &hot).unwrap();
    println!(
        "before clustering: {} hot tuples on {} pages ({:.1}% utilization)",
        before.hot_tuples,
        before.pages_with_hot,
        before.hot_utilization * 100.0
    );
    let mut moved = Vec::new();
    for rid in &hot {
        moved.push(t.relocate(*rid).expect("relocate"));
    }
    let after = waste::audit_locality(&t, &moved).unwrap();
    println!(
        "after clustering : {} hot tuples on {} pages ({:.1}% utilization)",
        after.hot_tuples,
        after.pages_with_hot,
        after.hot_utilization * 100.0
    );
    assert!(after.pages_with_hot < before.pages_with_hot);

    // --- Waste class 3: encoding ------------------------------------
    println!("\n--- 3. schema advisor (paper §4) ---");
    let schema = Schema {
        table: "articles".into(),
        columns: vec![
            ColumnDef::new("id", DeclaredType::Int64),
            ColumnDef::new("views", DeclaredType::Int64),
            ColumnDef::new("flags", DeclaredType::Int64),
            ColumnDef::new("pad", DeclaredType::Int64),
        ],
    };
    let report = waste::audit_encoding(
        &t,
        &schema,
        |b| {
            vec![
                Value::Int(i64::from_be_bytes(b[0..8].try_into().unwrap())),
                Value::Int(i64::from_le_bytes(b[8..16].try_into().unwrap())),
                Value::Int(i64::from_le_bytes(b[16..24].try_into().unwrap())),
                Value::Int(i64::from_le_bytes(b[24..32].try_into().unwrap())),
            ]
        },
        5_000,
    )
    .unwrap();
    print!("{}", report.render());
    println!("\ndone: all three waste classes measured and reclaimed.");
}
