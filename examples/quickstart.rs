//! Quickstart: typed tables, handle-based queries, and the three waste
//! classes in five minutes.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Declares a table from a typed schema ([`RowSchema`]), loads it
//! through the batched write path (`insert_many`: one descent + one
//! per-leaf latch per destination leaf, not per row), resolves an index
//! handle once ([`Table::index`] → `IndexRef`), then shows (1) the
//! index cache answering projections from B+Tree free space — via point
//! lookups, a batched `get_many`/`Batch`, and an ordered range cursor —
//! (2) the write side of `Batch` (`put`/`update`/`delete` grouped per
//! index, reads observing the batch's writes), (3) a locality audit
//! before and after hot/cold clustering, (4) the schema advisor
//! finding encoding waste, (5) the self-tuning free-space
//! controller (`DbConfig::tuning_interval`) scoring every spare-byte
//! consumer's hits per KiB and reallocating bytes online — its
//! decision trace is printed and also rides along in the waste report —
//! and (6) the `nbb-proto` wire frame layout that carries all of these
//! operations over loopback TCP (`examples/server_roundtrip.rs` runs
//! the live client/server pair).
//!
//! Beneath all of it sits the overlapped-I/O buffer pool: a page fault
//! releases its pool-stripe lock across the disk read (concurrent
//! misses on the *same* page coalesce onto one read, faults for
//! *distinct* pages overlap), and dirty evictions hand their bytes to
//! a background write-behind queue instead of a synchronous device
//! write (`DbConfig::write_behind` sizes it; `Database::persist`/
//! `close` drain it, so durability is unchanged). The `pool_*` fields
//! printed at the end meter that machinery.
//!
//! The pool also practices what the paper preaches on itself: with
//! `DbConfig::compressed_budget_bytes` set, cold eviction victims are
//! compressed into a byte-budgeted side tier instead of being forgotten,
//! and a later fault on such a page decompresses instead of reading the
//! disk — spare CPU traded for an effectively larger pool. This example
//! runs with a deliberately small heap pool so the final `pool:` lines
//! show the tier absorbing refaults.
//!
//! Writers are concurrency-safe per key: every put/update/delete
//! installs a key-level **write intent** on its index before touching
//! anything, so N threads hammering one key serialize cleanly (racing
//! deleters split into one `true` and N-1 `false`s; nothing aborts or
//! disappears), while disjoint-key writers stay fully parallel under
//! the per-leaf latches. `DbConfig::intent_stripes` sizes the intent
//! table; `TableStats::intent_parks`/`intent_handoffs` (printed below)
//! meter the contention it absorbed.
//!
//! All of this concurrency is *checked*, not just promised — see
//! `CONCURRENCY.md` at the repo root for the lock-order lattice. To run
//! the verification locally:
//!
//! ```sh
//! cargo run -p nbb-lint      # static rules L1-L6 (unranked locks,
//!                            # std::sync leaks, unjustified unwraps...)
//! cargo test --workspace     # debug profile arms the runtime rank
//!                            # checker: any lock-order inversion panics
//!                            # naming both locks
//! ```
//!
//! Release builds (`--release`, the benches) compile the rank layer out
//! entirely, so the discipline costs nothing on the measured paths.

use nbb::core::db::{Database, DbConfig};
use nbb::core::query::Batch;
use nbb::core::row::RowSchema;
use nbb::core::waste;
use nbb::encoding::{ColumnDef, DeclaredType, Schema, Value};

fn main() {
    // A typed schema: id | views | flags | pad. The physical layout
    // (offsets, widths, order-preserving key bytes) is derived from the
    // declared types — no hand-packed tuples.
    let schema = Schema {
        table: "articles".into(),
        columns: vec![
            ColumnDef::new("id", DeclaredType::Int64),
            ColumnDef::new("views", DeclaredType::Int64),
            ColumnDef::new("flags", DeclaredType::Int64),
            ColumnDef::new("pad", DeclaredType::Int64),
        ],
    };
    let rows = RowSchema::new(&schema);
    // A small heap pool plus a compressed-frame budget: evictions are
    // frequent enough to matter, and the tier catches them. Two
    // write-behind flusher threads drain the dirty-page queue in
    // parallel, and the self-tuning controller is armed — the interval
    // is deliberately huge so this example drives its ticks manually
    // (section 4) instead of racing a background thread.
    let db = Database::open(DbConfig {
        heap_frames: 24,
        compressed_budget_bytes: 512 * 1024,
        flusher_threads: 2,
        tuning_interval: Some(std::time::Duration::from_secs(3600)),
        // Cursor readahead: each range-scan refill speculatively
        // batch-loads the next 8 leaves (one read_many per group);
        // section 5 runs a cold scan and prints the verdict counters.
        readahead: 8,
        ..DbConfig::default()
    });
    let t = db.create_table_with(&rows).expect("create table");
    t.create_index(rows.index_spec("by_id", "id", &["views"]).expect("geometry"))
        .expect("create index");

    // Bulk load through the batched write path: the whole batch is
    // validated up front, heap appends share one page latch per tail
    // page, and each index pays one descent + one per-leaf latch per
    // destination leaf instead of per row.
    let load: Vec<Vec<u8>> = (0..10_000i64)
        .map(|i| {
            rows.encode(&[
                Value::Int(i),
                Value::Int(i % 100), // views: small range!
                Value::Int(1),       // flags: constant!
                Value::Int(0),
            ])
            .expect("encode")
        })
        .collect();
    t.insert_many(&load).expect("batched insert");
    let s = t.stats();
    println!(
        "loaded {} rows as {} write batch(es) — amortization visible in stats()",
        s.inserts, s.write_batches
    );
    assert_eq!(s.write_batches, 1);

    // --- Waste class 1: unused space, recycled as an index cache -----
    println!("--- 1. index caching (unused space, paper §2) ---");
    // Resolve the index once; every query below skips the name lookup.
    let by_id = t.index("by_id").expect("index handle");
    let key = rows.key("id", &Value::Int(4242)).expect("key");
    let first = by_id.project(&key).expect("query").expect("found");
    let second = by_id.project(&key).expect("query").expect("found");
    println!("first access : index_only = {} (heap fetch, cache populated)", first.index_only);
    println!("second access: index_only = {} (answered from leaf free space)", second.index_only);
    assert!(!first.index_only && second.index_only);

    // Batched execution: one sorted pass, locks amortized per leaf and
    // per pool shard instead of per key.
    let hot: Vec<Vec<u8>> =
        (0..1024i64).map(|i| rows.key("id", &Value::Int(i * 7 % 10_000)).unwrap()).collect();
    let tuples = by_id.get_many(&hot).expect("batched get");
    assert!(tuples.iter().all(|t| t.is_some()));
    println!("get_many     : {} keys in one batched pass", tuples.len());
    let out =
        t.execute(Batch::new().get("by_id", &hot[0]).project("by_id", &hot[1])).expect("batch");
    assert!(out[0].tuple().is_some() && out[1].projection().is_some());

    // Write ops ride the same grouped execution: puts (upserts), then
    // updates, then deletes, then reads — so a batch's reads always
    // observe its writes. Each write group is validated up front and
    // applied through the leaf-grouped multi-key tree ops.
    let fresh =
        rows.encode(&[Value::Int(10_000), Value::Int(7), Value::Int(1), Value::Int(0)]).unwrap();
    let changed =
        rows.encode(&[Value::Int(4242), Value::Int(999), Value::Int(1), Value::Int(0)]).unwrap();
    let k_new = rows.key("id", &Value::Int(10_000)).unwrap();
    let k_gone = rows.key("id", &Value::Int(9_999)).unwrap();
    let out = t
        .execute(
            Batch::new()
                .put("by_id", &fresh)
                .update("by_id", &key, &changed)
                .delete("by_id", &k_gone)
                .get("by_id", &k_new) // sees the put
                .get("by_id", &k_gone), // sees the delete
        )
        .expect("write batch");
    println!(
        "write batch : put at rid {}, update applied = {}, delete applied = {}",
        out[0].rid().expect("put returns a rid"),
        out[1].applied().unwrap(),
        out[2].applied().unwrap()
    );
    assert!(out[3].tuple().is_some() && out[4].tuple().is_none());

    // Same-key writers need no external coordination: the key-level
    // write intents serialize them end to end. Eight threads race
    // put/update/delete on ONE key; every op returns cleanly and
    // exactly one row (or none) survives, whole.
    {
        let hot_key = rows.key("id", &Value::Int(4242)).unwrap();
        std::thread::scope(|s| {
            for w in 0..8i64 {
                let t = &t;
                let rows = &rows;
                let hot_key = &hot_key;
                s.spawn(move || {
                    let by_id = t.index("by_id").unwrap();
                    let mine = rows
                        .encode(&[Value::Int(4242), Value::Int(w), Value::Int(0), Value::Int(0)])
                        .unwrap();
                    by_id.put(&mine).expect("puts never abort");
                    by_id.update(hot_key, &mine).expect("updates never abort");
                    by_id.delete(hot_key).expect("losing deleters report false, not errors");
                });
            }
        });
        assert!(t.index("by_id").unwrap().get(&hot_key).expect("clean read").is_none());
        let s = t.stats();
        println!(
            "same-key storm: 8 writers serialized by write intents \
             ({} parked, {} handoffs), final state consistent",
            s.intent_parks, s.intent_handoffs
        );
    }

    // Ordered range cursor: walks sibling leaves, serving cached
    // projections from leaf free space where they are warm.
    let lo = rows.key("id", &Value::Int(4_000)).unwrap();
    let hi = rows.key("id", &Value::Int(4_100)).unwrap();
    let in_range = by_id.range_projected(&lo[..]..&hi[..]).filter(|r| r.is_ok()).count();
    println!("range cursor : {in_range} rows in id 4000..4100, in key order");
    assert_eq!(in_range, 100);

    let stats = by_id.tree().index_stats().unwrap();
    println!(
        "index: {} leaves at {:.0}% fill, {} free bytes -> {} cache slots ({} used)",
        stats.leaf_pages,
        stats.avg_fill() * 100.0,
        stats.free_bytes,
        stats.cache_slots,
        stats.cache_occupied
    );

    // --- Waste class 2: locality ------------------------------------
    println!("\n--- 2. locality audit (paper §3) ---");
    let mut all = Vec::new();
    t.scan(|rid, _| {
        all.push(rid);
        true
    })
    .unwrap();
    let hot: Vec<_> = all.iter().copied().step_by(200).collect(); // scattered hot set
    let before = waste::audit_locality(&t, &hot).unwrap();
    println!(
        "before clustering: {} hot tuples on {} pages ({:.1}% utilization)",
        before.hot_tuples,
        before.pages_with_hot,
        before.hot_utilization * 100.0
    );
    let mut moved = Vec::new();
    for rid in &hot {
        moved.push(t.relocate(*rid).expect("relocate"));
    }
    let after = waste::audit_locality(&t, &moved).unwrap();
    println!(
        "after clustering : {} hot tuples on {} pages ({:.1}% utilization)",
        after.hot_tuples,
        after.pages_with_hot,
        after.hot_utilization * 100.0
    );
    assert!(after.pages_with_hot < before.pages_with_hot);

    // --- Waste class 3: encoding ------------------------------------
    println!("\n--- 3. schema advisor (paper §4) ---");
    let report =
        waste::audit_encoding(&t, &schema, |b| rows.decode(b).expect("decode"), 5_000).unwrap();
    print!("{}", report.render());

    // --- Waste, closed-loop: the self-tuning controller ---------------
    println!("\n--- 4. self-tuning free-space controller ---");
    // Every spare-byte consumer — this index's leaf cache space, the
    // join cache, the compressed tier — reports cumulative hits and
    // current bytes each tick; the controller scores hits per spare
    // KiB and moves one bounded step from the lowest-value consumer to
    // the highest. First tick only records baselines.
    let hot_keys: Vec<Vec<u8>> =
        (0..1024i64).map(|i| rows.key("id", &Value::Int(i * 3)).unwrap()).collect();
    db.tuning_tick(); // baselines only
    for _ in 0..6 {
        // A genuinely hot set: after the first pass these answer from
        // the leaf cache, so the index earns hits per spare KiB every
        // interval while the compressed tier sits mostly idle.
        for k in &hot_keys {
            let _ = by_id.project(k).expect("query");
        }
        db.tuning_tick();
    }
    let decisions = db.tuner_decisions();
    for line in &decisions {
        println!("{line}");
    }
    assert!(
        !decisions.is_empty(),
        "the hot index earns hits per KiB; the idle tier must donate to it"
    );
    println!("({} decision(s); the same trace renders in the waste report)", decisions.len());

    // --- Waste, read-side: batched faults + cursor readahead ----------
    println!("\n--- 5. batched read path: readahead over a cold scan ---");
    // Force the index cold (unpinned pages only — a best-effort sweep),
    // then run one ordered scan. With `DbConfig::readahead` set, every
    // cursor refill speculatively batch-loads the leaves past the
    // resident frontier in ONE `read_many`, so the scan stops paying
    // one device round-trip per leaf. Speculative frames are the
    // clock's first-choice victims: a wrong guess costs a wasted read,
    // never a working-set eviction.
    let index_pool = db.index_pool();
    for id in 0..index_pool.disk().num_pages() {
        let _ = index_pool.evict_page(nbb::storage::PageId(id));
    }
    index_pool.reset_stats();
    let zero = rows.key("id", &Value::Int(0)).unwrap();
    let scanned = by_id.range(&zero[..]..).filter(|r| r.is_ok()).count();
    let ps = index_pool.stats();
    println!(
        "cold scan    : {} rows; prefetched {} leaves ({} hit, {} wasted so far), \
         {} pages in {} batched reads ({:.1} pages/read)",
        scanned,
        ps.prefetch_issued,
        ps.prefetch_hits,
        ps.prefetch_wasted,
        ps.read_pages,
        ps.read_batches,
        ps.read_pages as f64 / ps.read_batches.max(1) as f64,
    );
    assert!(ps.prefetch_issued > 0, "a cold ordered scan must trigger readahead");
    assert!(ps.read_batches < ps.read_pages, "batches must coalesce multiple pages");

    // --- Over the wire: the nbb-proto frame layout --------------------
    println!("\n--- 6. the network front door's frame layout ---");
    // Everything above is also reachable over loopback TCP through
    // `nbb-server` (see `examples/server_roundtrip.rs`). The wire unit
    // is a length-prefixed frame:
    //
    //   [u32 BE payload length] [payload]
    //
    // and every request payload starts the same way:
    //
    //   [u64 BE request id] [u8 op tag] [op-specific fields...]
    //
    // Variable-length fields are length-prefixed in turn (names and
    // keys: u32 BE length + bytes; lists: u32 BE count, then each
    // element), integers are big-endian — the same order-preserving
    // convention as `nbb-encoding`'s key codecs, so a key's wire form
    // IS its index form; the server compares and routes without
    // re-encoding. Responses echo the request id so a pipelined
    // connection may complete out of order; the id is the correlation
    // key, arrival position means nothing.
    let frame = nbb_proto::encode_request(&nbb_proto::Request {
        id: 7,
        op: nbb_proto::RequestOp::GetMany {
            table: "t".into(),
            index: "id".into(),
            keys: vec![vec![0xAB, 0xCD]],
        },
    });
    let hex: Vec<String> = frame.iter().map(|b| format!("{b:02x}")).collect();
    println!("get_many frame ({} bytes): {}", frame.len(), hex.join(" "));
    println!("               [len u32 | id u64 | tag u8 | \"t\" | \"id\" | 1 key: ab cd]");
    // The layout is load-bearing: decode must invert encode exactly,
    // and the length prefix is what lets a reader reassemble frames
    // from arbitrary TCP chunk boundaries.
    let decoded = nbb_proto::decode_request(&frame[nbb_proto::HEADER_LEN..]).expect("round-trip");
    assert_eq!(decoded.id, 7);
    assert_eq!(
        u32::from_be_bytes(frame[..4].try_into().expect("4-byte header")) as usize,
        frame.len() - nbb_proto::HEADER_LEN,
        "the prefix counts payload bytes, not the prefix itself"
    );

    // --- Beneath it all: the overlapped-I/O buffer pool ---------------
    let s = t.stats();
    println!(
        "\npool: {} faults started, {} coalesced onto in-flight loads, \
         write-behind {} flushed / {} pending",
        s.pool_faults, s.pool_fault_joins, s.pool_wb_flushed, s.pool_wb_pending
    );
    println!(
        "pool: compressed tier served {} faults without disk \
         ({} pages held compressed, {} budget evictions, {} stalls joined a decompress)",
        s.pool_compressed_hits,
        s.pool_compressed_pages,
        s.pool_compressed_evictions,
        s.pool_decompress_stalls
    );
    drop(t);
    db.close().expect("close drains write-behind and flushes both pools");
    println!("done: all three waste classes measured and reclaimed.");
}
