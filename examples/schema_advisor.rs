//! The §4.1 schema advisor: treat declared types as hints, measure what
//! the data actually needs, and materialize the optimized encoding.
//!
//! ```sh
//! cargo run --release --example schema_advisor
//! ```
//!
//! Analyzes a synthetic Wikipedia revision table, prints the per-column
//! verdicts (the "automated tools [that] infer true field types"), then
//! proves the recommended encodings are lossless by materializing and
//! round-tripping every column.

use nbb::encoding::{
    analyze_table, decode_column, encode_column, ColumnDef, DeclaredType, Schema, Value,
};
use nbb::workload::WikiGenerator;

fn main() {
    let mut gen = WikiGenerator::new(99);
    let mut pages = gen.pages(2_000);
    let revisions = gen.revisions(&mut pages, 10);

    let schema = Schema {
        table: "revision".into(),
        columns: vec![
            ColumnDef::new("rev_id", DeclaredType::Int64),
            ColumnDef::new("rev_page", DeclaredType::Int64),
            ColumnDef::new("rev_comment", DeclaredType::Str { width: 40 }),
            ColumnDef::new("rev_timestamp", DeclaredType::Str { width: 14 }),
            ColumnDef::new("rev_minor_edit", DeclaredType::Bool),
            ColumnDef::new("rev_deleted", DeclaredType::Bool),
            ColumnDef::new("rev_len", DeclaredType::Int64),
        ],
    };
    let rows: Vec<Vec<Value>> = revisions
        .iter()
        .map(|r| {
            vec![
                Value::Int(r.id as i64),
                Value::Int(r.page_id as i64),
                Value::Str(r.comment.clone()),
                Value::Str(r.timestamp.clone()),
                Value::Bool(r.minor_edit),
                Value::Bool(r.deleted),
                Value::Int(r.len as i64),
            ]
        })
        .collect();

    let report = analyze_table(&schema, &rows);
    print!("{}", report.render());

    println!("\nmaterializing the optimized encodings (lossless round trip):");
    let mut declared_bytes = 0f64;
    let mut measured_bytes = 0usize;
    for (ci, analysis) in report.columns.iter().enumerate() {
        let values: Vec<Value> = rows.iter().map(|r| r[ci].clone()).collect();
        let encoded = encode_column(&values, &analysis.recommended);
        let decoded = decode_column(&encoded);
        assert_eq!(decoded, values, "column {} must round-trip", analysis.name);
        declared_bytes += analysis.declared_bits * values.len() as f64 / 8.0;
        measured_bytes += encoded.byte_len();
        println!(
            "  {:<16} {:>8} bytes measured (declared {:>8.0})  ok",
            analysis.name,
            encoded.byte_len(),
            analysis.declared_bits * values.len() as f64 / 8.0
        );
    }
    println!(
        "\ntotal: {:.0} KB declared -> {:.0} KB optimized = {:.1}% measured waste (paper: 16-83% per table)",
        declared_bytes / 1024.0,
        measured_bytes as f64 / 1024.0,
        (1.0 - measured_bytes as f64 / declared_bytes) * 100.0
    );
}
